"""Single-update protocol for a general variable CFD over horizontal partitions.

This implements the insert/delete case analysis of Section 6 for a
variable CFD that cannot be checked locally.  Each site keeps a
:class:`~repro.indexes.idx.CFDIndex` over its *local* tuples; the site
receiving an update decides from its local classes whether the change
can be resolved locally, and only otherwise broadcasts the updated tuple
(or, with the MD5 optimization, its 128-bit digest plus the values the
remote check needs) to the other sites.

The communication cost is at most one broadcast (``n - 1`` messages) per
update — independent of |D| — and many updates ship nothing at all:

* an inserted tuple whose (LHS, RHS) class already has local members
  never needs a broadcast;
* a deleted tuple that was not a violation, or whose class keeps local
  members, never needs a broadcast.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.cfd import CFD
from repro.core.tuples import Tuple
from repro.core.violations import ViolationSet
from repro.distributed.message import MessageKind
from repro.distributed.network import Network
from repro.distributed.serialization import (
    MD5_BYTES,
    TID_BYTES,
    estimate_tuple_bytes,
    md5_digest,
)
from repro.indexes.idx import CFDIndex

MarkFn = Callable[[Any], None]


class GeneralCFDProtocol:
    """Insert/delete handling for one general variable CFD.

    Parameters
    ----------
    cfd:
        The variable CFD.
    site_indices:
        Per-site local IDX structures (site id -> :class:`CFDIndex`).
    violations:
        The live violation set (consulted for "is this tuple already a
        known violation of this CFD?").
    network:
        Shipments are charged here.
    eligible_sites:
        The sites that can possibly hold tuples matching the CFD's
        pattern (sites whose fragmentation predicate conflicts with the
        pattern constants are excluded up front — the ``Fi ∧ F_phi``
        optimization).
    use_md5:
        When True, broadcasts ship an MD5 digest of the tuple plus the
        LHS/RHS values needed by the remote check instead of the whole
        tuple (the optimization at the end of Section 6).
    """

    def __init__(
        self,
        cfd: CFD,
        site_indices: Mapping[int, CFDIndex],
        violations: ViolationSet,
        network: Network,
        eligible_sites: list[int],
        use_md5: bool = True,
    ):
        self._cfd = cfd
        self._indices = site_indices
        self._violations = violations
        self._network = network
        self._eligible_sites = list(eligible_sites)
        self._use_md5 = use_md5

    # -- shipment helpers ----------------------------------------------------------

    def _broadcast_cost(self, t: Tuple) -> int:
        if self._use_md5:
            # digest of the full tuple + the values the remote lookup needs
            needed = list(self._cfd.attributes)
            return MD5_BYTES + TID_BYTES + estimate_tuple_bytes(t, needed) - TID_BYTES
        return estimate_tuple_bytes(t)

    def _broadcast(self, home_site: int, t: Tuple, tag: str) -> list[int]:
        """Ship ``t`` (or its digest) to every other eligible site."""
        targets = [s for s in self._eligible_sites if s != home_site]
        kind = MessageKind.DIGEST if self._use_md5 else MessageKind.TUPLE
        payload: Any
        if self._use_md5:
            payload = {
                "tid": t.tid,
                "digest": md5_digest(t),
                "key": {a: t[a] for a in self._cfd.attributes},
            }
        else:
            payload = t
        cost = self._broadcast_cost(t)
        for target in targets:
            self._network.send(home_site, target, kind, payload, cost, units=1, tag=tag)
        return targets

    def _notify(self, home_site: int, target: int, payload: Any, tag: str) -> None:
        """A small control message (e.g. "unmark this class")."""
        self._network.send(
            home_site, target, MessageKind.CONTROL, payload, TID_BYTES, units=1, tag=tag
        )

    # -- insertion -------------------------------------------------------------------

    def insert(
        self, home_site: int, t: Tuple, mark: MarkFn, unmark: MarkFn
    ) -> None:
        """Process the insertion of ``t`` at ``home_site``."""
        cfd = self._cfd
        if not cfd.lhs_matches(t):
            return
        index = self._indices[home_site]
        key = index.lhs_key(t)
        local_classes = index.classes(key)
        rhs_value = t[cfd.rhs]
        same_class = local_classes.get(rhs_value, set())
        diff_classes = {v: tids for v, tids in local_classes.items() if v != rhs_value}

        t_violates = False
        if same_class:
            # Local tuples share t's (X, B): t's status equals theirs, and no tuple
            # anywhere changes status, so no shipment is needed.
            if diff_classes:
                t_violates = True
            else:
                t_violates = any(
                    self._violations.violates(tid, cfd.name) for tid in same_class
                )
        else:
            local_conflict_known = any(
                self._violations.violates(tid, cfd.name)
                for tids in diff_classes.values()
                for tid in tids
            )
            if diff_classes:
                t_violates = True
                # Existing local tuples that were not violations become ones now.
                for tids in diff_classes.values():
                    for tid in tids:
                        if not self._violations.violates(tid, cfd.name):
                            mark(tid)
            if not local_conflict_known:
                # Either there is no local conflict at all (t's status must be
                # decided remotely) or the local conflict was not previously a
                # violation (so the whole group held a single RHS value and
                # remote members of it become violations now).  Only then is a
                # broadcast needed — when a conflicting local tuple is already
                # a known violation, every other tuple that could conflict with
                # t is a known violation too (Example 9 of the paper).
                for target in self._broadcast(home_site, t, f"{cfd.name}:ins"):
                    remote = self._indices[target]
                    for value, tids in remote.classes(key).items():
                        if value != rhs_value:
                            t_violates = True
                            for tid in tids:
                                if not self._violations.violates(tid, cfd.name):
                                    mark(tid)
        if t_violates:
            mark(t.tid)
        index.add_tuple(t)

    # -- deletion ----------------------------------------------------------------------

    def delete(
        self, home_site: int, t: Tuple, mark: MarkFn, unmark: MarkFn
    ) -> None:
        """Process the deletion of ``t`` from ``home_site``."""
        cfd = self._cfd
        if not cfd.lhs_matches(t):
            return
        index = self._indices[home_site]
        key = index.lhs_key(t)
        rhs_value = t[cfd.rhs]
        was_violation = self._violations.violates(t.tid, cfd.name)
        index.remove_tuple(t)
        if not was_violation:
            # Deletions never create violations; a non-violating tuple leaves quietly.
            return
        unmark(t.tid)

        if index.class_of(key, rhs_value):
            # Other local tuples still carry t's (X, B) value: the global picture of
            # the group is unchanged, nothing else loses its violation status.
            return

        # t's class might now be empty globally; consult the other sites.
        remaining_local = index.classes(key)
        members_by_value: dict[Any, set[Any]] = {
            value: set(tids) for value, tids in remaining_local.items()
        }
        remote_members_by_site: dict[int, dict[Any, set[Any]]] = {}
        for target in self._broadcast(home_site, t, f"{cfd.name}:del"):
            remote = self._indices[target]
            remote_classes = remote.classes(key)
            remote_members_by_site[target] = remote_classes
            for value, tids in remote_classes.items():
                members_by_value.setdefault(value, set()).update(tids)

        if rhs_value in members_by_value:
            # t's class survives at some other site: nothing else changes.
            return
        if len(members_by_value) == 1:
            # The group is left with a single RHS value: its members no longer
            # violate the CFD.  Unmark them wherever they live.
            ((_, tids),) = members_by_value.items()
            for tid in tids:
                unmark(tid)
            for target, remote_classes in remote_members_by_site.items():
                if any(remote_classes.values()):
                    self._notify(home_site, target, {"unmark": key}, f"{cfd.name}:unmark")
