"""Detection algorithms for horizontally partitioned data (Section 6).

* :mod:`repro.horizontal.single` — the single-update insert/delete
  protocol for a variable CFD that cannot be checked locally: the home
  site inspects its local equivalence classes and, only when necessary,
  broadcasts the updated tuple (or its MD5 digest) to the other sites.
* :mod:`repro.horizontal.inchor` — ``incHor`` (Fig. 8): batch updates
  and multiple CFDs with the local-checkability optimizations.
* :mod:`repro.horizontal.bathor` — the batch baseline ``batHor``.
* :mod:`repro.horizontal.ibathor` — the improved batch baseline
  ``ibatHor`` of Exp-10.
"""

from repro.horizontal.single import GeneralCFDProtocol
from repro.horizontal.inchor import HorizontalIncrementalDetector
from repro.horizontal.bathor import HorizontalBatchDetector
from repro.horizontal.ibathor import ImprovedHorizontalBatchDetector

__all__ = [
    "GeneralCFDProtocol",
    "HorizontalIncrementalDetector",
    "HorizontalBatchDetector",
    "ImprovedHorizontalBatchDetector",
]
