"""``batHor``: the batch baseline for horizontal partitions.

Following Fan et al. (ICDE 2010), the batch detector recomputes
``V(Sigma, D)`` from scratch.  Constant CFDs and locally checkable
variable CFDs are evaluated at each site over its own fragment; for
every other variable CFD each site ships the (tid + X + B) projection of
its locally pattern-matching tuples to a coordinator site, which then
groups and checks them.  Work and shipment are proportional to |D| per
CFD.

The per-site phase is expressed as one pure task per site
(:func:`_site_batch_task`) submitted to the cluster's
:class:`~repro.runtime.scheduler.SiteScheduler`: each task runs the
local checks, plans the shipments its site would make and pre-groups its
pattern-matching tuples by LHS key.  The coordinator then merges the
partial groups (grouping is associative, so the merged verdicts equal a
centralized pass over the reconstructed database) and charges the
planned shipments to the network — identical results and identical
shipment counts on every executor backend.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterable

from repro.core.cfd import CFD, UNNAMED, is_locally_checkable, split_local_general
from repro.core.detector import CentralizedDetector
from repro.core.tuples import Tuple
from repro.core.violations import ViolationSet
from repro.distributed.cluster import Cluster
from repro.distributed.message import MessageKind
from repro.distributed.serialization import TID_BYTES, estimate_tuple_bytes
from repro.obs import profile as _prof
from repro.runtime.executor import SiteTask


def _site_batch_task(
    local_cfds: list[CFD],
    general_cfds: list[CFD],
    ship_names: frozenset[str],
    tuples: "list[Tuple] | Any",
    fusion: bool = True,
) -> tuple[list, dict[str, list[tuple[Any, int]]], dict, bool]:
    """One site's whole batch-detection contribution (pure, picklable).

    ``tuples`` is the site's fragment: a tuple list for row storage, or
    the fragment relation itself when column-backed (the scans then run
    as vectorized kernels over the encoded columns, with the grouped
    LHS keys shared across all CFDs on the same attributes).

    Returns ``(local_violations, shipments, groups, compact)``:

    * per locally-checkable CFD, the tids violating it inside this
      fragment;
    * per general CFD this site must ship for, the ``(tid, bytes)`` of
      every locally pattern-matching tuple;
    * per general CFD, the fragment's partial LHS groups
      ``{lhs_key: {rhs_value: {tids}}}`` for the coordinator to merge.

    Column-backed fragments return the *compact* wire form instead
    (``compact=True``): local violations as row bitsets, shipments as
    one bitset of shipping rows per CFD, and groups as ``(singles,
    multis)`` — bare row indices for singleton ``(LHS key, RHS value)``
    buckets, row bitsets for the rest — a few ints per group rather
    than decoded values and tid sets.  A fragment replica in a warm
    worker assigns row
    indices identical to the coordinator's copy (it is built from the
    coordinator's own full physical export plus its journal deltas), so
    the coordinator decodes every mask against its local store —
    compact results are what keep a shared-memory round's pickled bytes
    proportional to the *changes*, not the database.
    """
    from repro.columnar.store import column_store_of
    from repro.sqlstore.store import sql_store_of

    shipments: dict[str, list[tuple[Any, int]]] = {}
    groups: dict[str, dict] = {}
    store = column_store_of(tuples)
    if store is not None:
        from repro.columnar import kernels

        if fusion and len(local_cfds) > 1:
            from repro.rulefuse import fused_columnar_masks

            local_masks = [
                (cfd.name, mask)
                for cfd, mask in zip(
                    local_cfds, fused_columnar_masks(store, local_cfds)
                )
            ]
        else:
            local_masks = [
                (cfd.name, kernels.violation_mask(cfd, store)) for cfd in local_cfds
            ]
        for cfd in general_cfds:
            want_ship = cfd.name in ship_names
            ship, by_key = kernels.horizontal_batch_scan(
                store, cfd, want_ship, compact=True
            )
            if want_ship:
                shipments[cfd.name] = ship
            groups[cfd.name] = by_key
        return local_masks, shipments, groups, True
    sql_store = sql_store_of(tuples)
    if sql_store is not None:
        # SQL-backed fragments run every scan as a pushed-down query
        # and return the same decoded wire shapes as the row path.
        from repro.sqlstore import kernels as sql_kernels

        if fusion and len(local_cfds) > 1:
            from repro.rulefuse import fused_sql_violations

            local_violations = [
                (cfd.name, tids)
                for cfd, tids in zip(
                    local_cfds, fused_sql_violations(sql_store, local_cfds)
                )
            ]
        else:
            local_violations = [
                (cfd.name, sql_kernels.violations_of(cfd, sql_store))
                for cfd in local_cfds
            ]
        for cfd in general_cfds:
            want_ship = cfd.name in ship_names
            ship, by_key = sql_kernels.horizontal_batch_scan(
                sql_store, cfd, want_ship
            )
            if want_ship:
                shipments[cfd.name] = ship
            groups[cfd.name] = by_key
        return local_violations, shipments, groups, False
    if fusion and len(local_cfds) > 1:
        from repro.rulefuse import fused_rows_violations

        local_violations = [
            (cfd.name, tids)
            for cfd, tids in zip(local_cfds, fused_rows_violations(local_cfds, tuples))
        ]
    else:
        local_violations = [
            (cfd.name, CentralizedDetector.violations_of(cfd, tuples))
            for cfd in local_cfds
        ]
    if _prof.enabled:
        _t0 = perf_counter()
    for cfd in general_cfds:
        needed = list(cfd.attributes)
        ship = shipments.setdefault(cfd.name, []) if cfd.name in ship_names else None
        by_key = groups.setdefault(cfd.name, {})
        lhs = cfd.lhs
        rhs = cfd.rhs
        for t in tuples:
            if not cfd.lhs_matches(t):
                continue
            if ship is not None:
                ship.append((t.tid, estimate_tuple_bytes(t, needed)))
            key = tuple(t[a] for a in lhs)
            by_key.setdefault(key, {}).setdefault(t[rhs], set()).add(t.tid)
    if _prof.enabled:
        _prof.note("shipment.row_scan", perf_counter() - _t0, len(tuples))
    return local_violations, shipments, groups, False


class HorizontalBatchDetector:
    """Recompute ``V(Sigma, D)`` over a horizontally partitioned cluster."""

    def __init__(self, cluster: Cluster, cfds: Iterable[CFD], fusion: bool = True):
        if not cluster.is_horizontal():
            raise ValueError("HorizontalBatchDetector requires a horizontal cluster")
        self._cluster = cluster
        self._network = cluster.network
        self._partitioner = cluster.horizontal_partitioner
        self._cfds = list(cfds)
        self._fusion = fusion
        for cfd in self._cfds:
            cfd.validate_against(self._partitioner.schema)
        self._local_cfds, self._general_cfds = split_local_general(
            self._cfds,
            lambda cfd: cfd.is_constant()
            or is_locally_checkable(cfd, self._partitioner),
        )

    def _shipping_sites(self, cfd: CFD, coordinator: int) -> frozenset[int]:
        """Sites that must ship their matching tuples for ``cfd``."""
        constants = {
            a: cfd.pattern.entry(a)
            for a in cfd.lhs
            if cfd.pattern.entry(a) is not UNNAMED
        }
        shipping = []
        for frag in self._partitioner.fragments:
            if frag.site == coordinator:
                continue
            if constants and frag.predicate.conflicts_with_constants(constants):
                continue
            shipping.append(frag.site)
        return frozenset(shipping)

    def detect(self) -> ViolationSet:
        """Compute ``V(Sigma, D)`` from scratch, charging shipments to the network."""
        violations = ViolationSet()
        sites = self._cluster.sites()
        coordinator = self._cluster.site_ids()[0]
        shipping_sites = {
            cfd.name: self._shipping_sites(cfd, coordinator)
            for cfd in self._general_cfds
        }

        from repro.columnar.store import column_store_of
        from repro.sqlstore.store import sql_store_of

        tasks = [
            SiteTask(
                site.site_id,
                _site_batch_task,
                (
                    self._local_cfds,
                    self._general_cfds,
                    frozenset(
                        name
                        for name, shippers in shipping_sites.items()
                        if site.site_id in shippers
                    ),
                    site.fragment
                    if column_store_of(site.fragment) is not None
                    or sql_store_of(site.fragment) is not None
                    else list(site.fragment),
                    self._fusion,
                ),
                label="batHor",
            )
            for site in sites
        ]
        results = self._cluster.scheduler.run(tasks)

        # Merge in site order: local verdicts first, then per general CFD the
        # shipments (charged per matching tuple, exactly as each site would
        # send them) and the group union.  Compact results stay in row
        # space on the wire and are decoded here against the coordinator's
        # own copy of the site's fragment (identical row indices by
        # construction; values at row r are identical on both sides, so
        # the re-derived wire-size estimates match what the site itself
        # would have computed).
        from repro.columnar.masks import iter_mask_rows, mask_to_tids

        stores = {
            site.site_id: column_store_of(site.fragment) for site in sites
        }
        general_by_name = {cfd.name: cfd for cfd in self._general_cfds}
        merged: dict[str, dict[tuple, dict[Any, set[Any]]]] = {
            cfd.name: {} for cfd in self._general_cfds
        }
        for result in results:
            local_violations, shipments, groups, compact = result.value
            store = stores[result.site] if compact else None
            for cfd_name, tids in local_violations:
                if compact:
                    tids = mask_to_tids(store, tids)
                for tid in tids:
                    violations.add(tid, cfd_name)
            for cfd_name, shipment in shipments.items():
                if compact:
                    cfd = general_by_name[cfd_name]
                    tables = [
                        (store.codes(a), store.dictionary(a).byte_sizes())
                        for a in cfd.attributes
                    ]
                    shipment = (
                        (store.tid_of_row(r), TID_BYTES + sum(t[c[r]] for c, t in tables))
                        for r in iter_mask_rows(shipment)
                    )
                for tid, nbytes in shipment:
                    self._network.send(
                        result.site,
                        coordinator,
                        MessageKind.PARTIAL_TUPLE,
                        {"tid": tid},
                        nbytes,
                        units=1,
                        tag=cfd_name,
                    )
            for cfd_name, by_key in groups.items():
                target = merged[cfd_name]
                if compact:
                    # Each bucket is (LHS key, RHS value)-uniform, so any
                    # member row of the local fragment copy names both.
                    cfd = general_by_name[cfd_name]
                    lhs = cfd.lhs
                    rhs = cfd.rhs
                    singles, multis = by_key
                    for r in singles:
                        key = tuple(store.value_at(r, a) for a in lhs)
                        slot = target.setdefault(key, {})
                        slot.setdefault(store.value_at(r, rhs), set()).add(
                            store.tid_of_row(r)
                        )
                    for mask in multis:
                        first = (mask & -mask).bit_length() - 1
                        key = tuple(store.value_at(first, a) for a in lhs)
                        slot = target.setdefault(key, {})
                        slot.setdefault(store.value_at(first, rhs), set()).update(
                            mask_to_tids(store, mask)
                        )
                    continue
                for key, by_rhs in by_key.items():
                    slot = target.setdefault(key, {})
                    for rhs_value, tids in by_rhs.items():
                        slot.setdefault(rhs_value, set()).update(tids)

        for cfd in self._general_cfds:
            for by_rhs in merged[cfd.name].values():
                if len(by_rhs) > 1:
                    for tids in by_rhs.values():
                        for tid in tids:
                            violations.add(tid, cfd.name)
        return violations
