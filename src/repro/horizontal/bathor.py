"""``batHor``: the batch baseline for horizontal partitions.

Following Fan et al. (ICDE 2010), the batch detector recomputes
``V(Sigma, D)`` from scratch.  Constant CFDs and locally checkable
variable CFDs are evaluated at each site over its own fragment; for
every other variable CFD each site ships the (tid + X + B) projection of
its locally pattern-matching tuples to a coordinator site, which then
groups and checks them.  Work and shipment are proportional to |D| per
CFD.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.cfd import CFD, UNNAMED
from repro.core.detector import CentralizedDetector
from repro.core.violations import ViolationSet
from repro.distributed.cluster import Cluster
from repro.distributed.message import MessageKind
from repro.distributed.serialization import estimate_tuple_bytes


class HorizontalBatchDetector:
    """Recompute ``V(Sigma, D)`` over a horizontally partitioned cluster."""

    def __init__(self, cluster: Cluster, cfds: Iterable[CFD]):
        if not cluster.is_horizontal():
            raise ValueError("HorizontalBatchDetector requires a horizontal cluster")
        self._cluster = cluster
        self._network = cluster.network
        self._partitioner = cluster.horizontal_partitioner
        self._cfds = list(cfds)
        for cfd in self._cfds:
            cfd.validate_against(self._partitioner.schema)

    def _is_locally_checkable(self, cfd: CFD) -> bool:
        if self._partitioner.n_fragments == 1:
            return True
        lhs = set(cfd.lhs)
        for frag in self._partitioner.fragments:
            attrs = frag.predicate.attributes()
            if not attrs or not attrs <= lhs:
                return False
        return True

    def _ship_for(self, cfd: CFD, coordinator: int) -> None:
        """Ship locally pattern-matching projections of every tuple to the coordinator."""
        constants = {
            a: cfd.pattern.entry(a)
            for a in cfd.lhs
            if cfd.pattern.entry(a) is not UNNAMED
        }
        needed = list(cfd.attributes)
        for frag in self._partitioner.fragments:
            if frag.site == coordinator:
                continue
            if constants and frag.predicate.conflicts_with_constants(constants):
                continue
            fragment = self._cluster.site(frag.site).fragment
            for t in fragment:
                if cfd.lhs_matches(t):
                    self._network.send(
                        frag.site,
                        coordinator,
                        MessageKind.PARTIAL_TUPLE,
                        {"tid": t.tid},
                        estimate_tuple_bytes(t, needed),
                        units=1,
                        tag=cfd.name,
                    )

    def detect(self) -> ViolationSet:
        """Compute ``V(Sigma, D)`` from scratch, charging shipments to the network."""
        violations = ViolationSet()
        sites = self._cluster.sites()
        for cfd in self._cfds:
            if cfd.is_constant() or self._is_locally_checkable(cfd):
                for site in sites:
                    for tid in CentralizedDetector.violations_of(cfd, site.fragment):
                        violations.add(tid, cfd.name)
                continue
            coordinator = self._cluster.site_ids()[0]
            self._ship_for(cfd, coordinator)
            snapshot = self._cluster.reconstruct()
            for tid in CentralizedDetector.violations_of(cfd, snapshot):
                violations.add(tid, cfd.name)
        return violations
