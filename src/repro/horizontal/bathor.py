"""``batHor``: the batch baseline for horizontal partitions.

Following Fan et al. (ICDE 2010), the batch detector recomputes
``V(Sigma, D)`` from scratch.  Constant CFDs and locally checkable
variable CFDs are evaluated at each site over its own fragment; for
every other variable CFD each site ships the (tid + X + B) projection of
its locally pattern-matching tuples to a coordinator site, which then
groups and checks them.  Work and shipment are proportional to |D| per
CFD.

The per-site phase is expressed as one pure task per site
(:func:`_site_batch_task`) submitted to the cluster's
:class:`~repro.runtime.scheduler.SiteScheduler`: each task runs the
local checks, plans the shipments its site would make and pre-groups its
pattern-matching tuples by LHS key.  The coordinator then merges the
partial groups (grouping is associative, so the merged verdicts equal a
centralized pass over the reconstructed database) and charges the
planned shipments to the network — identical results and identical
shipment counts on every executor backend.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterable

from repro.core.cfd import CFD, UNNAMED
from repro.core.detector import CentralizedDetector
from repro.core.tuples import Tuple
from repro.core.violations import ViolationSet
from repro.distributed.cluster import Cluster
from repro.distributed.message import MessageKind
from repro.distributed.serialization import estimate_tuple_bytes
from repro.obs import profile as _prof
from repro.runtime.executor import SiteTask


def _site_batch_task(
    local_cfds: list[CFD],
    general_cfds: list[CFD],
    ship_names: frozenset[str],
    tuples: "list[Tuple] | Any",
) -> tuple[list[tuple[str, set[Any]]], dict[str, list[tuple[Any, int]]], dict]:
    """One site's whole batch-detection contribution (pure, picklable).

    ``tuples`` is the site's fragment: a tuple list for row storage, or
    the fragment relation itself when column-backed (the scans then run
    as vectorized kernels over the encoded columns, with the grouped
    LHS keys shared across all CFDs on the same attributes).

    Returns ``(local_violations, shipments, groups)``:

    * per locally-checkable CFD, the tids violating it inside this
      fragment;
    * per general CFD this site must ship for, the ``(tid, bytes)`` of
      every locally pattern-matching tuple;
    * per general CFD, the fragment's partial LHS groups
      ``{lhs_key: {rhs_value: {tids}}}`` for the coordinator to merge.
    """
    from repro.columnar.store import column_store_of

    local_violations = [
        (cfd.name, CentralizedDetector.violations_of(cfd, tuples)) for cfd in local_cfds
    ]
    shipments: dict[str, list[tuple[Any, int]]] = {}
    groups: dict[str, dict[tuple, dict[Any, set[Any]]]] = {}
    store = column_store_of(tuples)
    if store is not None:
        from repro.columnar import kernels

        for cfd in general_cfds:
            want_ship = cfd.name in ship_names
            ship, by_key = kernels.horizontal_batch_scan(store, cfd, want_ship)
            if want_ship:
                shipments[cfd.name] = ship
            groups[cfd.name] = by_key
        return local_violations, shipments, groups
    if _prof.enabled:
        _t0 = perf_counter()
    for cfd in general_cfds:
        needed = list(cfd.attributes)
        ship = shipments.setdefault(cfd.name, []) if cfd.name in ship_names else None
        by_key = groups.setdefault(cfd.name, {})
        lhs = cfd.lhs
        rhs = cfd.rhs
        for t in tuples:
            if not cfd.lhs_matches(t):
                continue
            if ship is not None:
                ship.append((t.tid, estimate_tuple_bytes(t, needed)))
            key = tuple(t[a] for a in lhs)
            by_key.setdefault(key, {}).setdefault(t[rhs], set()).add(t.tid)
    if _prof.enabled:
        _prof.note("shipment.row_scan", perf_counter() - _t0, len(tuples))
    return local_violations, shipments, groups


class HorizontalBatchDetector:
    """Recompute ``V(Sigma, D)`` over a horizontally partitioned cluster."""

    def __init__(self, cluster: Cluster, cfds: Iterable[CFD]):
        if not cluster.is_horizontal():
            raise ValueError("HorizontalBatchDetector requires a horizontal cluster")
        self._cluster = cluster
        self._network = cluster.network
        self._partitioner = cluster.horizontal_partitioner
        self._cfds = list(cfds)
        for cfd in self._cfds:
            cfd.validate_against(self._partitioner.schema)
        self._local_cfds = [
            cfd
            for cfd in self._cfds
            if cfd.is_constant() or self._is_locally_checkable(cfd)
        ]
        local_ids = {id(cfd) for cfd in self._local_cfds}
        self._general_cfds = [cfd for cfd in self._cfds if id(cfd) not in local_ids]

    def _is_locally_checkable(self, cfd: CFD) -> bool:
        if self._partitioner.n_fragments == 1:
            return True
        lhs = set(cfd.lhs)
        for frag in self._partitioner.fragments:
            attrs = frag.predicate.attributes()
            if not attrs or not attrs <= lhs:
                return False
        return True

    def _shipping_sites(self, cfd: CFD, coordinator: int) -> frozenset[int]:
        """Sites that must ship their matching tuples for ``cfd``."""
        constants = {
            a: cfd.pattern.entry(a)
            for a in cfd.lhs
            if cfd.pattern.entry(a) is not UNNAMED
        }
        shipping = []
        for frag in self._partitioner.fragments:
            if frag.site == coordinator:
                continue
            if constants and frag.predicate.conflicts_with_constants(constants):
                continue
            shipping.append(frag.site)
        return frozenset(shipping)

    def detect(self) -> ViolationSet:
        """Compute ``V(Sigma, D)`` from scratch, charging shipments to the network."""
        violations = ViolationSet()
        sites = self._cluster.sites()
        coordinator = self._cluster.site_ids()[0]
        shipping_sites = {
            cfd.name: self._shipping_sites(cfd, coordinator)
            for cfd in self._general_cfds
        }

        from repro.columnar.store import column_store_of

        tasks = [
            SiteTask(
                site.site_id,
                _site_batch_task,
                (
                    self._local_cfds,
                    self._general_cfds,
                    frozenset(
                        name
                        for name, shippers in shipping_sites.items()
                        if site.site_id in shippers
                    ),
                    site.fragment
                    if column_store_of(site.fragment) is not None
                    else list(site.fragment),
                ),
                label="batHor",
            )
            for site in sites
        ]
        results = self._cluster.scheduler.run(tasks)

        # Merge in site order: local verdicts first, then per general CFD the
        # shipments (charged per matching tuple, exactly as each site would
        # send them) and the group union.
        merged: dict[str, dict[tuple, dict[Any, set[Any]]]] = {
            cfd.name: {} for cfd in self._general_cfds
        }
        for result in results:
            local_violations, shipments, groups = result.value
            for cfd_name, tids in local_violations:
                for tid in tids:
                    violations.add(tid, cfd_name)
            for cfd_name, shipment in shipments.items():
                for tid, nbytes in shipment:
                    self._network.send(
                        result.site,
                        coordinator,
                        MessageKind.PARTIAL_TUPLE,
                        {"tid": tid},
                        nbytes,
                        units=1,
                        tag=cfd_name,
                    )
            for cfd_name, by_key in groups.items():
                target = merged[cfd_name]
                for key, by_rhs in by_key.items():
                    slot = target.setdefault(key, {})
                    for rhs_value, tids in by_rhs.items():
                        slot.setdefault(rhs_value, set()).update(tids)

        for cfd in self._general_cfds:
            for by_rhs in merged[cfd.name].values():
                if len(by_rhs) > 1:
                    for tids in by_rhs.values():
                        for tid in tids:
                            violations.add(tid, cfd.name)
        return violations
