"""``ibatHor``: the improved batch baseline of Exp-10 (horizontal flavour).

Like :class:`~repro.vertical.ibatver.ImprovedVerticalBatchDetector`, it
rebuilds ``V(Sigma, D ⊕ delta-D)`` from an empty database using the
incremental insertion machinery and per-site indices, at a cost
proportional to ``|D| + |delta-D|``.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.cfd import CFD
from repro.core.relation import Relation
from repro.core.updates import UpdateBatch
from repro.core.violations import ViolationSet
from repro.distributed.cluster import Cluster
from repro.distributed.network import Network
from repro.horizontal.inchor import HorizontalIncrementalDetector
from repro.partition.horizontal import HorizontalPartitioner


class ImprovedHorizontalBatchDetector:
    """Recompute ``V(Sigma, D ⊕ delta-D)`` by incremental insertion from scratch."""

    def __init__(
        self,
        partitioner: HorizontalPartitioner,
        cfds: Iterable[CFD],
        use_md5: bool = True,
        network: Network | None = None,
        fusion: bool = True,
    ):
        self._partitioner = partitioner
        self._cfds = list(cfds)
        self._use_md5 = use_md5
        self._fusion = fusion
        # A caller-owned network lets the adaptive planner charge the
        # rebuild to the session ledger it measures; standalone use
        # keeps a private ledger as before.
        self._network = network or Network()

    @property
    def network(self) -> Network:
        """The network used by the rebuild (for shipment reporting)."""
        return self._network

    def detect(self, base: Relation, updates: UpdateBatch | None = None) -> ViolationSet:
        """Build ``V(Sigma, D ⊕ delta-D)`` starting from an empty database.

        The updated database is inserted tuple by tuple, so the cost is
        proportional to ``|D ⊕ delta-D|`` (Exp-10 of the paper).
        """
        final = updates.apply_to(base) if updates is not None else base
        empty = Relation(self._partitioner.schema, storage=base.storage)
        cluster = Cluster.from_horizontal(
            self._partitioner, empty, network=self._network
        )
        detector = HorizontalIncrementalDetector(
            cluster,
            self._cfds,
            violations=ViolationSet(),
            use_md5=self._use_md5,
            fusion=self._fusion,
        )
        detector.apply(UpdateBatch.inserts(list(final)))
        return detector.violations
