"""Columnar storage backend with interned values and vectorized kernels.

The package provides the ``"columnar"`` storage backend selectable on
any :class:`~repro.core.relation.Relation` (and per detection session
via ``repro.session(...).storage("columnar")``): one dictionary-encoded
code array per attribute plus a tid→row index, with column-sliced
projection/selection/join and the detection kernels of
:mod:`repro.columnar.kernels` that replace tuple-at-a-time loops with
single column sweeps shared across all CFDs on the same attributes.

Importing the package registers the backend with
:mod:`repro.core.storage`; results are bit-identical to the row backend
for every detector, executor and partitioning (see
``tests/test_storage_parity.py``).
"""

from repro.core.storage import StorageError, register_storage_backend
from repro.columnar.dictionary import ValueDictionary
from repro.columnar.store import ColumnRowView, ColumnStore, column_store_of
from repro.columnar import kernels

try:
    register_storage_backend("columnar", ColumnStore)
except StorageError:  # pragma: no cover - double registration is harmless
    pass

__all__ = [
    "ColumnRowView",
    "ColumnStore",
    "ValueDictionary",
    "column_store_of",
    "kernels",
]
