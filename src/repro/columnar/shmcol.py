"""Zero-copy export/attach of a :class:`ColumnStore` over shared memory.

The coordinator side of the shm backend *exports* a columnar fragment
once: each attribute's dictionary codes packed into a typed buffer (the
narrowest of ``B``/``H``/``I``/``Q`` that fits the dictionary) laid out
back to back in one ``multiprocessing.shared_memory`` segment, plus a
small pickled meta payload (schema, dictionary value tables, tid table,
column offsets).  A worker *attaches* the segment and rebuilds a live
:class:`AttachedColumnStore` whose code arrays are ``memoryview`` casts
straight into the segment — the code payload never crosses the pipe and
is never copied into the worker heap.

After attaching, the replica is writable: :class:`CodeColumn` backs each
column with the read-only shared base plus a private append tail, so the
coordinator can catch a resident replica up by sending compact *value*
deltas (see :func:`apply_delta`) instead of republishing.  Deltas carry
decoded values, never codes; the replica interns them into its own
dictionaries, so dictionary state needs no cross-process coordination
(coordinator-side dictionaries are shared across fragment stores and may
intern values the replica never sees, so codes can drift).

Physical *row indices*, in contrast, are aligned by construction: the
export snapshots the exact physical layout — tombstoned rows included —
and replaying the journal drives the replica through the same
insert/pop/compact code paths the coordinator's store runs, so row ``r``
names the same tuple on both sides at every version.  That alignment is
what lets warm workers return results in pure row space (bitset masks,
row indices) for the coordinator to decode locally, instead of pickling
decoded values and tid sets back across the pipe.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, Sequence

from repro.core.tuples import Tuple
from repro.columnar.dictionary import ValueDictionary
from repro.columnar.store import ColumnStore

#: Narrowest array typecode able to hold codes ``0 .. n_values - 1``.
_WIDTHS = (("B", 1, 1 << 8), ("H", 2, 1 << 16), ("I", 4, 1 << 32), ("Q", 8, 1 << 64))

_ITEMSIZE = {tc: size for tc, size, _ in _WIDTHS}


def typecode_for(n_values: int) -> str:
    for tc, _size, limit in _WIDTHS:
        if n_values <= limit:
            return tc
    raise ValueError(f"dictionary too large to encode: {n_values} values")


class CodeColumn:
    """A code array split into a shared read-only base and a private tail.

    The base is a typed ``memoryview`` into an attached shm segment (or a
    plain ``array`` for the inline-fallback path); appends from delta
    replay land in the Python-list tail.  Supports exactly the list
    surface :class:`ColumnStore` uses — indexing, iteration, ``append``/
    ``extend``, ``copy`` — and pickles as a plain list so an attached
    store can still cross a process boundary if a task returns it.
    """

    __slots__ = ("_base", "_tail")

    def __init__(self, base: Any):
        self._base = base
        self._tail: list[int] = []

    def __len__(self) -> int:
        return len(self._base) + len(self._tail)

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            return list(self)[index]
        n = len(self._base)
        if index < 0:
            index += n + len(self._tail)
        return self._base[index] if index < n else self._tail[index - n]

    def __iter__(self) -> Iterator[int]:
        yield from self._base
        yield from self._tail

    def append(self, code: int) -> None:
        self._tail.append(code)

    def extend(self, codes) -> None:
        self._tail.extend(codes)

    def copy(self) -> list[int]:
        return list(self)

    def __reduce__(self):
        return (list, (list(self),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CodeColumn({len(self._base)} shared + {len(self._tail)} local)"


class AttachedColumnStore(ColumnStore):
    """A :class:`ColumnStore` whose code arrays live in attached shm.

    Behaviorally identical to its parent (``column_store_of`` and every
    kernel accept it); only the physical column representation differs.
    Mutation works — appends go to the private tails, and a compaction
    naturally migrates the columns into private lists.
    """

    __slots__ = ()

    @classmethod
    def attach(
        cls,
        attrs: Sequence[str],
        dict_values: dict[str, list[Any]],
        columns: dict[str, CodeColumn],
        tids: Sequence[Any],
        dead: Sequence[int] = (),
    ) -> "AttachedColumnStore":
        store = cls.__new__(cls)
        store._attrs = tuple(attrs)
        dicts: dict[str, ValueDictionary] = {}
        for a in store._attrs:
            # Interning the exporter's value table in order reproduces its
            # code assignment exactly (dictionary entries are pairwise
            # distinct), so the shared code buffers decode correctly.
            d = ValueDictionary()
            for v in dict_values[a]:
                d.intern(v)
            dicts[a] = d
        store._dicts = dicts
        store._cols = columns
        store._tids = list(tids)
        store._dead = set(dead)
        # Skipping tombstones while enumerating in physical order rebuilds
        # the exporter's tid->row map exactly (a reinserted tid's dead old
        # row is shadowed by its later live one).
        store._rows = {
            tid: i for i, tid in enumerate(store._tids) if i not in store._dead
        }
        store._init_derived()
        return store


def export_payload(store: ColumnStore, schema: Any) -> tuple[dict, list[bytes], int]:
    """Snapshot ``store`` for publishing: ``(meta, buffers, total_bytes)``.

    ``buffers`` holds one packed code buffer per attribute — the *exact
    physical layout*, tombstoned rows included, so the replica's row
    indices align with the exporter's (the invariant compact row-space
    results depend on); ``meta["dead"]`` carries the tombstones.
    ``meta["columns"]`` records ``(attr, typecode, offset, count)`` so
    the buffers can be laid out back to back in one segment and re-cast
    on attach.  ``meta["shm"]`` is filled in by the publisher (segment
    name, or None for the inline-fallback path).
    """
    attrs = store.attributes
    columns: list[tuple[str, str, int, int]] = []
    buffers: list[bytes] = []
    offset = 0
    for a in attrs:
        tc = typecode_for(len(store.dictionary(a)))
        arr = array(tc, store.codes(a))
        buf = arr.tobytes()
        columns.append((a, tc, offset, len(arr)))
        buffers.append(buf)
        offset += len(buf)
    meta = {
        "schema": schema,
        "attrs": attrs,
        "dicts": {a: list(store.dictionary(a).values_list()) for a in attrs},
        "tids": list(store.tids_list()),
        "dead": sorted(store.dead_rows()),
        "columns": columns,
        "shm": None,
    }
    return meta, buffers, offset


def attach_relation(
    meta: dict, buf: Any, buffers: list[bytes] | None = None
) -> tuple[Any, list[Any]]:
    """Rebuild a live relation from a publish payload (worker side).

    ``buf`` is the attached segment's buffer for the zero-copy path, or
    None with ``buffers`` carrying the inline-pickled code buffers.
    Returns ``(relation, views)`` — the caller must ``release()`` every
    view before closing the segment.
    """
    from repro.core.relation import Relation

    views: list[Any] = []
    columns: dict[str, CodeColumn] = {}
    for i, (a, tc, offset, count) in enumerate(meta["columns"]):
        if buf is not None:
            view = memoryview(buf)[offset : offset + count * _ITEMSIZE[tc]].cast(tc)
            views.append(view)
            base: Any = view
        else:
            arr = array(tc)
            arr.frombytes(buffers[i])
            base = arr
        columns[a] = CodeColumn(base)
    store = AttachedColumnStore.attach(
        meta["attrs"], meta["dicts"], columns, meta["tids"], meta["dead"]
    )
    return Relation(meta["schema"], storage=store), views


def apply_delta(relation: Any, ops: Sequence[tuple]) -> None:
    """Replay a coordinator journal slice onto an attached replica.

    Ops are ``("i", tid, values)`` / ``("d", tid)`` in mutation order,
    carrying decoded values (see :meth:`ColumnStore.enable_journal`).
    """
    store = relation.store
    attrs = store.attributes
    for op in ops:
        if op[0] == "i":
            store.insert(Tuple(op[1], dict(zip(attrs, op[2]))))
        else:
            store.pop(op[1])
