"""Vectorized CFD detection kernels over a :class:`ColumnStore`.

Every kernel is the column-sweep equivalent of a tuple-at-a-time loop
somewhere in the detectors, and produces *bit-identical* results: the
dictionary encoding preserves ``==`` semantics, so grouping rows by code
keys partitions them exactly like grouping tuples by value keys, and the
cached per-code wire sizes reproduce ``estimate_tuple_bytes`` byte for
byte.  The shared primitive is :meth:`ColumnStore.grouped_rows` — the
LHS equivalence classes of a relation are computed once per attribute
list and reused by every CFD over those attributes (constant checks,
variable checks, IDX builds and shipment scans alike), instead of once
per tuple per CFD as in the row backend.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterable, Mapping, Sequence
from weakref import WeakKeyDictionary

from repro.core.cfd import CFD, UNNAMED
from repro.distributed.serialization import TID_BYTES
from repro.columnar.masks import mask_to_tids
from repro.columnar.store import ColumnStore
from repro.obs import profile as _prof

#: Sentinel for "a pattern constant never occurs in this store".
_UNSATISFIABLE = object()

#: Per-store cache of compiled pattern tests: ``store -> {cfd: (tests,
#: generations)}``.  ``generations`` snapshots the constant attributes'
#: dictionary generations and is consulted only for
#: :data:`_UNSATISFIABLE` entries — a missing constant may gain a code
#: when its dictionary grows, while positive entries never invalidate
#: (dictionaries are append-only, so assigned codes are stable for the
#: lifetime of the store).
_PATTERN_TEST_CACHE: "WeakKeyDictionary[ColumnStore, dict[CFD, tuple[Any, tuple[tuple[str, int], ...]]]]" = (
    WeakKeyDictionary()
)


def _compile_pattern_tests(
    store: ColumnStore, cfd: CFD
) -> "list[tuple[int, int]] | object":
    pattern = cfd.pattern
    tests: list[tuple[int, int]] = []
    for i, a in enumerate(cfd.lhs):
        entry = pattern.entry(a)
        if entry is UNNAMED:
            continue
        code = store.dictionary(a).code_of(entry)
        if code is None:
            return _UNSATISFIABLE
        tests.append((i, code))
    return tests


def _pattern_tests(store: ColumnStore, cfd: CFD) -> "list[tuple[int, int]] | object":
    """The positional ``(index, code)`` tests a group key must pass to
    match the CFD's LHS pattern constants — :data:`_UNSATISFIABLE` when a
    constant value never occurs in the store (no row can match).

    Compiled once per (store, CFD) and cached: repeated waves stop
    re-encoding the tableau constants on every sweep.  Unsatisfiable
    results re-check when any constant attribute's dictionary generation
    changed (new codes may have made the constant reachable)."""
    per_store = _PATTERN_TEST_CACHE.get(store)
    if per_store is None:
        per_store = _PATTERN_TEST_CACHE[store] = {}
    cached = per_store.get(cfd)
    if cached is not None:
        tests, generations = cached
        if tests is not _UNSATISFIABLE or all(
            store.dictionary(a).generation == generation
            for a, generation in generations
        ):
            return tests
    tests = _compile_pattern_tests(store, cfd)
    if tests is _UNSATISFIABLE:
        generations = tuple(
            (a, store.dictionary(a).generation)
            for a in cfd.lhs
            if cfd.pattern.entry(a) is not UNNAMED
        )
    else:
        generations = ()
    per_store[cfd] = (tests, generations)
    return tests


def _matching_group_items(
    store: ColumnStore, cfd: CFD
) -> Iterable[tuple[Any, list[int]]]:
    """The ``(code_key, rows)`` groups over ``cfd.lhs`` whose key matches
    the CFD's LHS pattern constants (all groups for an all-wildcard LHS)."""
    lhs = cfd.lhs
    groups = store.grouped_rows(lhs)
    tests = _pattern_tests(store, cfd)
    if tests is _UNSATISFIABLE:
        return ()
    if not tests:
        return groups.items()
    if len(lhs) == 1:
        code = tests[0][1]
        rows = groups.get(code)
        return ((code, rows),) if rows is not None else ()
    return (
        (key, rows)
        for key, rows in groups.items()
        if all(key[i] == code for i, code in tests)
    )


def _matching_group_masks(store: ColumnStore, cfd: CFD) -> Iterable[int]:
    """The row bitsets of the LHS groups matching the pattern constants."""
    lhs = cfd.lhs
    masks = store.grouped_masks(lhs)
    tests = _pattern_tests(store, cfd)
    if tests is _UNSATISFIABLE:
        return ()
    if not tests:
        return masks.values()
    if len(lhs) == 1:
        mask = masks.get(tests[0][1])
        return (mask,) if mask is not None else ()
    return (
        mask
        for key, mask in masks.items()
        if all(key[i] == code for i, code in tests)
    )


# -- violation kernels (CentralizedDetector.violations_of equivalents) ---------------


def constant_violation_mask(cfd: CFD, store: ColumnStore) -> int:
    """``V(phi, D)`` for a constant CFD, as a row bitset.

    Rows matching the LHS pattern are OR-ed into one bitset; subtracting
    the (cached, shared across CFDs on the same RHS) mask of rows that
    already carry the required RHS code leaves exactly the violating rows
    — no per-tuple set is built at all.
    """
    if _prof.enabled:
        _t0 = perf_counter()
    matching = 0
    for mask in _matching_group_masks(store, cfd):
        matching |= mask
    bad = 0
    if matching:
        rhs_code = store.dictionary(cfd.rhs).code_of(cfd.pattern.entry(cfd.rhs))
        if rhs_code is None:
            bad = matching  # the required constant never occurs: all match rows violate
        else:
            bad = matching & ~store.grouped_masks((cfd.rhs,)).get(rhs_code, 0)
    if _prof.enabled:
        _prof.note("columnar.constant_sweep", perf_counter() - _t0, len(store))
    return bad


def variable_violation_mask(cfd: CFD, store: ColumnStore) -> int:
    """``V(phi, D)`` for a variable CFD, as a row bitset: groups holding
    more than one distinct RHS code.

    A group is clean iff its bitset is contained in the bitset of a
    single RHS code (``group & ~rhs_mask == 0``): two big-int ops per
    group against the cached per-code RHS masks, accumulating violating
    groups into one bitset.
    """
    if _prof.enabled:
        _t0 = perf_counter()
    rhs_col = store.codes(cfd.rhs)
    rhs_masks = store.grouped_masks((cfd.rhs,))
    bad = 0
    for mask in _matching_group_masks(store, cfd):
        if mask.bit_count() < 2:
            continue
        first_row = (mask & -mask).bit_length() - 1
        if mask & ~rhs_masks.get(rhs_col[first_row], 0):
            bad |= mask
    if _prof.enabled:
        _prof.note("columnar.variable_sweep", perf_counter() - _t0, len(store))
    return bad


def violation_mask(cfd: CFD, store: ColumnStore) -> int:
    """``V(phi, D)`` for one CFD as a row bitset (the compact wire form:
    a warm worker returns this and the coordinator decodes it against
    its own copy of the fragment)."""
    if cfd.is_constant():
        return constant_violation_mask(cfd, store)
    return variable_violation_mask(cfd, store)


def constant_violations(cfd: CFD, store: ColumnStore) -> set[Any]:
    """``V(phi, D)`` for a constant CFD, decoded to tids."""
    return mask_to_tids(store, constant_violation_mask(cfd, store))


def variable_violations(cfd: CFD, store: ColumnStore) -> set[Any]:
    """``V(phi, D)`` for a variable CFD, decoded to tids."""
    return mask_to_tids(store, variable_violation_mask(cfd, store))


def violations_of(cfd: CFD, store: ColumnStore) -> set[Any]:
    """``V(phi, D)`` for one CFD — the columnar twin of the row-backend scan."""
    return mask_to_tids(store, violation_mask(cfd, store))


# -- bulk index construction -----------------------------------------------------------


def build_cfd_index(index: Any, store: ColumnStore) -> None:
    """Populate a :class:`~repro.indexes.idx.CFDIndex` from encoded columns.

    The grouped LHS keys are computed once for the whole relation (and
    shared with every other kernel over the same attributes), then each
    group is decoded once and loaded wholesale — instead of re-resolving
    pattern entries and building a key tuple per tuple.
    """
    if _prof.enabled:
        _t0 = perf_counter()
    cfd = index.cfd
    rhs_col = store.codes(cfd.rhs)
    rhs_dict = store.dictionary(cfd.rhs)
    tid_at = store.tid_of_row
    for key, rows in _matching_group_items(store, cfd):
        by_rhs: dict[int, set[Any]] = {}
        for r in rows:
            code = rhs_col[r]
            bucket = by_rhs.get(code)
            if bucket is None:
                by_rhs[code] = {tid_at(r)}
            else:
                bucket.add(tid_at(r))
        index.load_group(
            store.decode_key(cfd.lhs, key),
            {rhs_dict.value(code): tids for code, tids in by_rhs.items()},
        )
    if _prof.enabled:
        _prof.note("idx.build_columnar", perf_counter() - _t0, len(store))


# -- shipment scans (batch baselines) ---------------------------------------------------


def horizontal_batch_scan(
    store: ColumnStore, cfd: CFD, want_ship: bool, compact: bool = False
) -> tuple[Any, Any]:
    """One site's scan for a general CFD in ``batHor``.

    Returns ``(shipments, groups)``: the ``(tid, bytes)`` of every
    pattern-matching tuple (when this site ships for the CFD) and the
    fragment's decoded partial LHS groups for the coordinator merge —
    the columnar twin of the per-tuple loop in ``_site_batch_task``.

    With ``compact=True`` nothing is decoded and *nothing leaves row
    space*: the shipment is one row bitset (the coordinator re-derives
    each row's tid and wire-size estimate from its own copy — values at
    row ``r`` are identical on both sides), and the groups flatten to
    one ``(LHS key, RHS value)`` bucket each, encoded as a bare row
    index for the common singleton bucket and a row bitset otherwise.
    That is the wire form a warm worker sends back: a replica built
    from the coordinator's full physical export plus its journal deltas
    assigns identical row indices (codes may drift — fragment
    dictionaries are shared across stores coordinator-side — which is
    why no code crosses the pipe), so the coordinator recovers each
    bucket's key and RHS value from any member row of its own copy of
    the fragment (see ``HorizontalBatchDetector.detect``).
    """
    if _prof.enabled:
        _t0 = perf_counter()
    rhs_col = store.codes(cfd.rhs)
    if compact:
        ship_mask = 0
        singles: list[int] = []
        multis: list[int] = []
        for _key, rows in _matching_group_items(store, cfd):
            by_code: dict[int, int] = {}
            for r in rows:
                bit = 1 << r
                if want_ship:
                    ship_mask |= bit
                code = rhs_col[r]
                by_code[code] = by_code.get(code, 0) | bit
            for mask in by_code.values():
                if mask & (mask - 1):
                    multis.append(mask)
                else:
                    singles.append(mask.bit_length() - 1)
        if _prof.enabled:
            _prof.note("shipment.batch_scan", perf_counter() - _t0, len(store))
        return ship_mask, (singles, multis)
    needed = cfd.attributes
    col_tables = [(store.codes(a), store.dictionary(a).byte_sizes()) for a in needed]
    ship: list[tuple[Any, int]] = []
    rhs_dict = store.dictionary(cfd.rhs)
    tids = store.tids_list()
    groups_out: dict[tuple[Any, ...], dict[Any, set[Any]]] = {}
    for key, rows in _matching_group_items(store, cfd):
        by_rhs: dict[int, set[Any]] = {}
        for r in rows:
            tid = tids[r]
            if want_ship:
                nbytes = TID_BYTES
                for col, table in col_tables:
                    nbytes += table[col[r]]
                ship.append((tid, nbytes))
            code = rhs_col[r]
            bucket = by_rhs.get(code)
            if bucket is None:
                by_rhs[code] = {tid}
            else:
                bucket.add(tid)
        groups_out[store.decode_key(cfd.lhs, key)] = {
            rhs_dict.value(code): tids for code, tids in by_rhs.items()
        }
    if _prof.enabled:
        _prof.note("shipment.batch_scan", perf_counter() - _t0, len(store))
    return ship, groups_out


def constant_ship_scan(
    store: ColumnStore, relevant: Sequence[str], constants: Mapping[str, Any]
) -> list[tuple[Any, int]]:
    """``batVer``: (tid, bytes) of tuples whose ``relevant`` projection
    matches the pattern constants (column sweep, cached byte sizes)."""
    tests: list[tuple[list[int], int]] = []
    for a in relevant:
        if a in constants:
            code = store.dictionary(a).code_of(constants[a])
            if code is None:
                return []
            tests.append((store.codes(a), code))
    if _prof.enabled:
        _t0 = perf_counter()
    byte_tables = [(store.codes(a), store.dictionary(a).byte_sizes()) for a in relevant]
    tid_at = store.tid_of_row
    out: list[tuple[Any, int]] = []
    for r in store.iter_rows():
        if all(col[r] == code for col, code in tests):
            nbytes = TID_BYTES
            for col, table in byte_tables:
                nbytes += table[col[r]]
            out.append((tid_at(r), nbytes))
    if _prof.enabled:
        _prof.note("shipment.constant_scan", perf_counter() - _t0, len(store))
    return out


def project_ship_scan(
    store: ColumnStore, supplied: Sequence[str]
) -> list[tuple[Any, int]]:
    """``batVer``: (tid, bytes) of every tuple's ``supplied`` projection."""
    if _prof.enabled:
        _t0 = perf_counter()
    byte_tables = [(store.codes(a), store.dictionary(a).byte_sizes()) for a in supplied]
    tid_at = store.tid_of_row
    out: list[tuple[Any, int]] = []
    for r in store.iter_rows():
        nbytes = TID_BYTES
        for col, table in byte_tables:
            nbytes += table[col[r]]
        out.append((tid_at(r), nbytes))
    if _prof.enabled:
        _prof.note("shipment.project_scan", perf_counter() - _t0, len(store))
    return out
