"""Vectorized CFD detection kernels over a :class:`ColumnStore`.

Every kernel is the column-sweep equivalent of a tuple-at-a-time loop
somewhere in the detectors, and produces *bit-identical* results: the
dictionary encoding preserves ``==`` semantics, so grouping rows by code
keys partitions them exactly like grouping tuples by value keys, and the
cached per-code wire sizes reproduce ``estimate_tuple_bytes`` byte for
byte.  The shared primitive is :meth:`ColumnStore.grouped_rows` — the
LHS equivalence classes of a relation are computed once per attribute
list and reused by every CFD over those attributes (constant checks,
variable checks, IDX builds and shipment scans alike), instead of once
per tuple per CFD as in the row backend.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterable, Mapping, Sequence

from repro.core.cfd import CFD, UNNAMED
from repro.distributed.serialization import TID_BYTES
from repro.columnar.store import ColumnStore
from repro.obs import profile as _prof


def _matching_group_items(
    store: ColumnStore, cfd: CFD
) -> Iterable[tuple[Any, list[int]]]:
    """The ``(code_key, rows)`` groups over ``cfd.lhs`` whose key matches
    the CFD's LHS pattern constants (all groups for an all-wildcard LHS)."""
    lhs = cfd.lhs
    groups = store.grouped_rows(lhs)
    pattern = cfd.pattern
    tests: list[tuple[int, int]] = []
    for i, a in enumerate(lhs):
        entry = pattern.entry(a)
        if entry is UNNAMED:
            continue
        code = store.dictionary(a).code_of(entry)
        if code is None:
            return ()  # the constant never occurs: no row can match
        tests.append((i, code))
    if not tests:
        return groups.items()
    if len(lhs) == 1:
        code = tests[0][1]
        rows = groups.get(code)
        return ((code, rows),) if rows is not None else ()
    return (
        (key, rows)
        for key, rows in groups.items()
        if all(key[i] == code for i, code in tests)
    )


# -- violation kernels (CentralizedDetector.violations_of equivalents) ---------------


def constant_violations(cfd: CFD, store: ColumnStore) -> set[Any]:
    """``V(phi, D)`` for a constant CFD: one sweep over the LHS groups."""
    if _prof.enabled:
        _t0 = perf_counter()
    rhs_code = store.dictionary(cfd.rhs).code_of(cfd.pattern.entry(cfd.rhs))
    rhs_col = store.codes(cfd.rhs)
    tid_at = store.tid_of_row
    violating: set[Any] = set()
    for _key, rows in _matching_group_items(store, cfd):
        if rhs_code is None:
            violating.update(tid_at(r) for r in rows)
        else:
            violating.update(tid_at(r) for r in rows if rhs_col[r] != rhs_code)
    if _prof.enabled:
        _prof.note("columnar.constant_sweep", perf_counter() - _t0, len(store))
    return violating


def variable_violations(cfd: CFD, store: ColumnStore) -> set[Any]:
    """``V(phi, D)`` for a variable CFD: groups holding >1 distinct RHS code."""
    if _prof.enabled:
        _t0 = perf_counter()
    rhs_col = store.codes(cfd.rhs)
    tid_at = store.tid_of_row
    violating: set[Any] = set()
    for _key, rows in _matching_group_items(store, cfd):
        if len(rows) < 2:
            continue
        first = rhs_col[rows[0]]
        if any(rhs_col[r] != first for r in rows):
            violating.update(tid_at(r) for r in rows)
    if _prof.enabled:
        _prof.note("columnar.variable_sweep", perf_counter() - _t0, len(store))
    return violating


def violations_of(cfd: CFD, store: ColumnStore) -> set[Any]:
    """``V(phi, D)`` for one CFD — the columnar twin of the row-backend scan."""
    if cfd.is_constant():
        return constant_violations(cfd, store)
    return variable_violations(cfd, store)


# -- bulk index construction -----------------------------------------------------------


def build_cfd_index(index: Any, store: ColumnStore) -> None:
    """Populate a :class:`~repro.indexes.idx.CFDIndex` from encoded columns.

    The grouped LHS keys are computed once for the whole relation (and
    shared with every other kernel over the same attributes), then each
    group is decoded once and loaded wholesale — instead of re-resolving
    pattern entries and building a key tuple per tuple.
    """
    if _prof.enabled:
        _t0 = perf_counter()
    cfd = index.cfd
    rhs_col = store.codes(cfd.rhs)
    rhs_dict = store.dictionary(cfd.rhs)
    tid_at = store.tid_of_row
    for key, rows in _matching_group_items(store, cfd):
        by_rhs: dict[int, set[Any]] = {}
        for r in rows:
            code = rhs_col[r]
            bucket = by_rhs.get(code)
            if bucket is None:
                by_rhs[code] = {tid_at(r)}
            else:
                bucket.add(tid_at(r))
        index.load_group(
            store.decode_key(cfd.lhs, key),
            {rhs_dict.value(code): tids for code, tids in by_rhs.items()},
        )
    if _prof.enabled:
        _prof.note("idx.build_columnar", perf_counter() - _t0, len(store))


# -- shipment scans (batch baselines) ---------------------------------------------------


def horizontal_batch_scan(
    store: ColumnStore, cfd: CFD, want_ship: bool
) -> tuple[list[tuple[Any, int]], dict[tuple[Any, ...], dict[Any, set[Any]]]]:
    """One site's scan for a general CFD in ``batHor``.

    Returns ``(shipments, groups)``: the ``(tid, bytes)`` of every
    pattern-matching tuple (when this site ships for the CFD) and the
    fragment's decoded partial LHS groups for the coordinator merge —
    the columnar twin of the per-tuple loop in ``_site_batch_task``.
    """
    if _prof.enabled:
        _t0 = perf_counter()
    needed = cfd.attributes
    col_tables = [(store.codes(a), store.dictionary(a).byte_sizes()) for a in needed]
    rhs_col = store.codes(cfd.rhs)
    rhs_dict = store.dictionary(cfd.rhs)
    tids = store.tids_list()
    ship: list[tuple[Any, int]] = []
    groups_out: dict[tuple[Any, ...], dict[Any, set[Any]]] = {}
    for key, rows in _matching_group_items(store, cfd):
        by_rhs: dict[int, set[Any]] = {}
        for r in rows:
            tid = tids[r]
            if want_ship:
                nbytes = TID_BYTES
                for col, table in col_tables:
                    nbytes += table[col[r]]
                ship.append((tid, nbytes))
            code = rhs_col[r]
            bucket = by_rhs.get(code)
            if bucket is None:
                by_rhs[code] = {tid}
            else:
                bucket.add(tid)
        groups_out[store.decode_key(cfd.lhs, key)] = {
            rhs_dict.value(code): tids for code, tids in by_rhs.items()
        }
    if _prof.enabled:
        _prof.note("shipment.batch_scan", perf_counter() - _t0, len(store))
    return ship, groups_out


def constant_ship_scan(
    store: ColumnStore, relevant: Sequence[str], constants: Mapping[str, Any]
) -> list[tuple[Any, int]]:
    """``batVer``: (tid, bytes) of tuples whose ``relevant`` projection
    matches the pattern constants (column sweep, cached byte sizes)."""
    tests: list[tuple[list[int], int]] = []
    for a in relevant:
        if a in constants:
            code = store.dictionary(a).code_of(constants[a])
            if code is None:
                return []
            tests.append((store.codes(a), code))
    if _prof.enabled:
        _t0 = perf_counter()
    byte_tables = [(store.codes(a), store.dictionary(a).byte_sizes()) for a in relevant]
    tid_at = store.tid_of_row
    out: list[tuple[Any, int]] = []
    for r in store.iter_rows():
        if all(col[r] == code for col, code in tests):
            nbytes = TID_BYTES
            for col, table in byte_tables:
                nbytes += table[col[r]]
            out.append((tid_at(r), nbytes))
    if _prof.enabled:
        _prof.note("shipment.constant_scan", perf_counter() - _t0, len(store))
    return out


def project_ship_scan(
    store: ColumnStore, supplied: Sequence[str]
) -> list[tuple[Any, int]]:
    """``batVer``: (tid, bytes) of every tuple's ``supplied`` projection."""
    if _prof.enabled:
        _t0 = perf_counter()
    byte_tables = [(store.codes(a), store.dictionary(a).byte_sizes()) for a in supplied]
    tid_at = store.tid_of_row
    out: list[tuple[Any, int]] = []
    for r in store.iter_rows():
        nbytes = TID_BYTES
        for col, table in byte_tables:
            nbytes += table[col[r]]
        out.append((tid_at(r), nbytes))
    if _prof.enabled:
        _prof.note("shipment.project_scan", perf_counter() - _t0, len(store))
    return out
