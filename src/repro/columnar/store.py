"""The columnar storage backend: one code array per attribute.

A :class:`ColumnStore` keeps, per schema attribute, a dense list of
integer codes into a :class:`~repro.columnar.dictionary.ValueDictionary`,
plus a tid→row index.  Rows are append-only; deletions tombstone the row
and the store compacts itself once dead rows dominate.  Iteration yields
materialized :class:`~repro.core.tuples.Tuple` objects in insertion
order, so a columnar relation is observably identical to a row-backed
one — the point of the backend is that the detection kernels in
:mod:`repro.columnar.kernels` never need to materialize tuples at all.

Vertical projection, selection and key-join have column-sliced
implementations that share the (append-only) value dictionaries with the
parent store, which is what makes fragmenting a columnar relation
O(columns) list copies instead of O(rows) dict allocations.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, KeysView, Mapping, Sequence

from repro.core.schema import Schema
from repro.core.tuples import Tuple
from repro.columnar.dictionary import ValueDictionary
from repro.columnar.masks import rows_to_mask

#: Compact when more than this many rows — and over half of them — are dead.
_COMPACT_MIN_DEAD = 32

#: Stop journalling (forcing a full republish) past this many pending ops.
_JOURNAL_CAP = 4096

#: Process-local store identities, used as residency keys by warm executors.
_STORE_UIDS = itertools.count(1)


class ColumnRowView(Mapping[str, Any]):
    """A zero-copy Mapping facade over one stored row (decodes on access).

    Selection predicates receive these instead of materialized tuples;
    besides the Mapping protocol the view offers the read-only
    conveniences of :class:`~repro.core.tuples.Tuple` (``tid``,
    ``values_for``, ``as_dict``) so predicates written against the row
    backend keep working.  Call :meth:`materialize` for a real Tuple.
    """

    __slots__ = ("_store", "_row", "_tid")

    def __init__(self, store: "ColumnStore", row: int, tid: Any):
        self._store = store
        self._row = row
        self._tid = tid

    @property
    def tid(self) -> Any:
        return self._tid

    def __getitem__(self, attribute: str) -> Any:
        return self._store.value_at(self._row, attribute)

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.attributes)

    def __len__(self) -> int:
        return len(self._store.attributes)

    def values_for(self, attributes) -> tuple[Any, ...]:
        """The values of ``attributes`` in the given order (``t[X]``)."""
        return tuple(self._store.value_at(self._row, a) for a in attributes)

    def as_dict(self) -> dict[str, Any]:
        """A plain ``dict`` copy of the attribute values."""
        return {a: self._store.value_at(self._row, a) for a in self._store.attributes}

    def materialize(self) -> Tuple:
        """A real, immutable :class:`~repro.core.tuples.Tuple` of this row."""
        return Tuple(self._tid, self.as_dict())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnRowView(tid={self._tid!r})"


class ColumnStore:
    """Dictionary-encoded column arrays behind the ``Relation`` facade."""

    name = "columnar"

    __slots__ = (
        "__weakref__",
        "_attrs",
        "_dicts",
        "_cols",
        "_tids",
        "_rows",
        "_dead",
        "_groups",
        "_masks",
        "_uid",
        "_version",
        "_journal",
        "_journal_base",
    )

    def __init__(self, schema: Schema):
        self._attrs: tuple[str, ...] = schema.attribute_names
        self._dicts: dict[str, ValueDictionary] = {
            a: ValueDictionary() for a in self._attrs
        }
        self._cols: dict[str, list[int]] = {a: [] for a in self._attrs}
        self._tids: list[Any] = []
        self._rows: dict[Any, int] = {}
        self._dead: set[int] = set()
        self._init_derived()

    def _init_derived(self) -> None:
        """Fresh derived state: caches, identity, version, journal.

        Every construction path — ``__init__``, the column-sliced algebra
        clones, unpickling — goes through here, so a new store object is
        always a new identity with version 0 and no journal.
        """
        self._groups: dict[tuple[str, ...], dict[Any, list[int]]] = {}
        self._masks: dict[tuple[str, ...], dict[Any, int]] = {}
        self._uid: int = next(_STORE_UIDS)
        self._version: int = 0
        self._journal: list[tuple] | None = None
        self._journal_base: int = 0

    # -- identity / change feed (for warm executors) -----------------------------------

    @property
    def uid(self) -> int:
        """A process-local identity: distinct per store object, stable for life."""
        return self._uid

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps once per inserted/removed row."""
        return self._version

    def enable_journal(self) -> None:
        """Start recording mutations so remote replicas can catch up by delta.

        Journal entries carry decoded *values*, never codes: a replica
        interns them into its own dictionaries, so dictionary state never
        has to stay synchronized across the process boundary.  A no-op if
        a journal is already recording.
        """
        if self._journal is None:
            self._journal = []
            self._journal_base = self._version

    def journal_since(self, version: int) -> list[tuple] | None:
        """The ops replaying ``version`` → current, or None if unavailable.

        None means the caller must fall back to a full republish: either
        journalling was never enabled, the requested version predates the
        journal, or the journal overflowed :data:`_JOURNAL_CAP`.
        """
        if self._journal is None or version < self._journal_base:
            return None
        return self._journal[version - self._journal_base :]

    def trim_journal(self, version: int) -> None:
        """Drop journal entries no replica needs anymore (up to ``version``)."""
        if self._journal is None or version <= self._journal_base:
            return
        self._journal = self._journal[version - self._journal_base :]
        self._journal_base = version

    def _note_mutation(self, op: tuple) -> None:
        self._version += 1
        journal = self._journal
        if journal is not None:
            journal.append(op)
            if len(journal) > _JOURNAL_CAP:
                self._journal = None
        if self._groups:
            self._groups = {}
        if self._masks:
            self._masks = {}

    # -- backend protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple]:
        dicts = self._dicts
        cols = self._cols
        attrs = self._attrs
        for tid, row in self._rows.items():
            yield Tuple(tid, {a: dicts[a].value(cols[a][row]) for a in attrs})

    def __contains__(self, tid: Any) -> bool:
        return tid in self._rows

    def get(self, tid: Any) -> Tuple | None:
        row = self._rows.get(tid)
        if row is None:
            return None
        return Tuple(
            tid, {a: self._dicts[a].value(self._cols[a][row]) for a in self._attrs}
        )

    def tids(self) -> KeysView[Any]:
        return self._rows.keys()

    def insert(self, t: Tuple) -> None:
        row = len(self._tids)
        self._tids.append(t.tid)
        for a in self._attrs:
            self._cols[a].append(self._dicts[a].intern(t[a]))
        self._rows[t.tid] = row
        self._note_mutation(("i", t.tid, tuple(t[a] for a in self._attrs)))

    def pop(self, tid: Any) -> Tuple | None:
        row = self._rows.pop(tid, None)
        if row is None:
            return None
        t = Tuple(
            tid, {a: self._dicts[a].value(self._cols[a][row]) for a in self._attrs}
        )
        self._dead.add(row)
        self._note_mutation(("d", tid))
        if len(self._dead) > _COMPACT_MIN_DEAD and len(self._dead) * 2 > len(self._tids):
            self._compact()
        return t

    def copy(self) -> "ColumnStore":
        clone = ColumnStore.__new__(ColumnStore)
        clone._attrs = self._attrs
        clone._dicts = dict(self._dicts)  # dictionaries are append-only: share them
        clone._cols = {a: col.copy() for a, col in self._cols.items()}
        clone._tids = self._tids.copy()
        clone._rows = dict(self._rows)
        clone._dead = set(self._dead)
        clone._init_derived()
        return clone

    # -- column access (the kernel surface) ------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """The stored attribute names, in schema order."""
        return self._attrs

    def dictionary(self, attribute: str) -> ValueDictionary:
        """The value dictionary encoding ``attribute``'s column."""
        return self._dicts[attribute]

    def codes(self, attribute: str) -> list[int]:
        """The dense code array of ``attribute`` (includes tombstoned rows)."""
        return self._cols[attribute]

    def is_dense(self) -> bool:
        """True when every physical row is live (no tombstones)."""
        return not self._dead

    def live_rows(self) -> Iterator[int]:
        """Physical indices of the live rows, in insertion order."""
        return iter(self._rows.values())

    def dead_rows(self) -> set[int]:
        """Physical indices of the tombstoned rows (do not mutate)."""
        return self._dead

    def iter_rows(self):
        """Live row indices for a sweep: a ``range`` when dense (faster),
        the tid-index values (insertion order) otherwise."""
        if not self._dead:
            return range(len(self._tids))
        return self._rows.values()

    def tid_of_row(self, row: int) -> Any:
        return self._tids[row]

    def tids_list(self) -> list[Any]:
        """The physical row→tid table (includes tombstoned rows; do not mutate)."""
        return self._tids

    def row_of(self, tid: Any) -> int | None:
        return self._rows.get(tid)

    def value_at(self, row: int, attribute: str) -> Any:
        return self._dicts[attribute].value(self._cols[attribute][row])

    def row_view(self, row: int) -> ColumnRowView:
        return ColumnRowView(self, row, self._tids[row])

    def grouped_rows(self, attributes: Sequence[str]) -> dict[Any, list[int]]:
        """Live rows grouped by their code key over ``attributes``.

        The key is the bare code for a single attribute and a code tuple
        otherwise.  Two rows share a key iff their values compare equal
        on every attribute (dictionary-encoding preserves ``==``
        semantics), so this is exactly the LHS equivalence-class
        partition every CFD kernel needs — computed once per relation
        per attribute list and cached until the next mutation.
        """
        attrs = tuple(attributes)
        cached = self._groups.get(attrs)
        if cached is not None:
            return cached
        groups: dict[Any, list[int]] = {}
        if len(attrs) == 1:
            col = self._cols[attrs[0]]
            if not self._dead:
                for row, code in enumerate(col):
                    bucket = groups.get(code)
                    if bucket is None:
                        groups[code] = [row]
                    else:
                        bucket.append(row)
            else:
                for row in self._rows.values():
                    code = col[row]
                    bucket = groups.get(code)
                    if bucket is None:
                        groups[code] = [row]
                    else:
                        bucket.append(row)
        else:
            cols = [self._cols[a] for a in attrs]
            if not self._dead:
                for row, key in enumerate(zip(*cols)):
                    bucket = groups.get(key)
                    if bucket is None:
                        groups[key] = [row]
                    else:
                        bucket.append(row)
            else:
                for row in self._rows.values():
                    key = tuple(col[row] for col in cols)
                    bucket = groups.get(key)
                    if bucket is None:
                        groups[key] = [row]
                    else:
                        bucket.append(row)
        self._groups[attrs] = groups
        return groups

    def grouped_masks(self, attributes: Sequence[str]) -> dict[Any, int]:
        """The :meth:`grouped_rows` partition as ``{key: bitset mask}``.

        One integer bitset of physical rows per LHS key, cached alongside
        the row-list groups until the next mutation.  The mask form is
        what the allocation-free CFD kernels consume: checking a group
        against an accepted code set becomes ``mask & ~ok`` on big ints.
        """
        attrs = tuple(attributes)
        cached = self._masks.get(attrs)
        if cached is None:
            cached = {
                key: rows_to_mask(rows)
                for key, rows in self.grouped_rows(attrs).items()
            }
            self._masks[attrs] = cached
        return cached

    def decode_key(self, attributes: Sequence[str], key: Any) -> tuple[Any, ...]:
        """Decode a :meth:`grouped_rows` key back into a value tuple."""
        attrs = tuple(attributes)
        if len(attrs) == 1:
            return (self._dicts[attrs[0]].value(key),)
        return tuple(self._dicts[a].value(c) for a, c in zip(attrs, key))

    # -- column-sliced algebra -----------------------------------------------------

    def _live_in_order(self) -> list[int]:
        return list(self._rows.values())

    def project_columns(self, keep: Sequence[str]) -> "ColumnStore":
        """A new store over the ``keep`` columns (shared dictionaries)."""
        clone = ColumnStore.__new__(ColumnStore)
        clone._attrs = tuple(keep)
        clone._dicts = {a: self._dicts[a] for a in clone._attrs}
        clone._init_derived()
        if not self._dead:
            clone._cols = {a: self._cols[a].copy() for a in clone._attrs}
            clone._tids = self._tids.copy()
            clone._rows = dict(self._rows)
            clone._dead = set()
        else:
            rows = self._live_in_order()
            clone._cols = {
                a: [self._cols[a][r] for r in rows] for a in clone._attrs
            }
            clone._tids = [self._tids[r] for r in rows]
            clone._rows = {tid: i for i, tid in enumerate(clone._tids)}
            clone._dead = set()
        return clone

    def take_rows(
        self, rows: Sequence[int], keep: Sequence[str] | None = None
    ) -> "ColumnStore":
        """A new store holding the given physical rows (shared dictionaries)."""
        attrs = tuple(keep) if keep is not None else self._attrs
        clone = ColumnStore.__new__(ColumnStore)
        clone._attrs = attrs
        clone._dicts = {a: self._dicts[a] for a in attrs}
        clone._cols = {a: [self._cols[a][r] for r in rows] for a in attrs}
        clone._tids = [self._tids[r] for r in rows]
        clone._rows = {tid: i for i, tid in enumerate(clone._tids)}
        clone._dead = set()
        clone._init_derived()
        return clone

    def join_columns(
        self, other: "ColumnStore", attributes: Sequence[str]
    ) -> "ColumnStore":
        """Key-join two stores (same tid space) into columns ``attributes``.

        Only tids present in both stores survive, in this store's
        insertion order.  Attributes stored on both sides are checked for
        agreement, mirroring :meth:`repro.core.tuples.Tuple.merge`.
        """
        shared = [a for a in other._attrs if a in set(self._attrs)]
        pairs: list[tuple[int, int]] = []  # (row in self, row in other)
        for tid, row in self._rows.items():
            other_row = other._rows.get(tid)
            if other_row is None:
                continue
            for a in shared:
                mine, theirs = self._cols[a][row], other._cols[a][other_row]
                if self._dicts[a] is other._dicts[a]:
                    conflict = mine != theirs
                else:
                    conflict = self._dicts[a].value(mine) != other._dicts[a].value(theirs)
                if conflict:
                    raise ValueError(
                        f"conflicting values for attribute {a!r} while merging tid {tid!r}"
                    )
            pairs.append((row, other_row))
        mine_set = set(self._attrs)
        clone = ColumnStore.__new__(ColumnStore)
        clone._attrs = tuple(attributes)
        clone._dicts = {}
        clone._cols = {}
        for a in clone._attrs:
            if a in mine_set:
                clone._dicts[a] = self._dicts[a]
                col = self._cols[a]
                clone._cols[a] = [col[r] for r, _ in pairs]
            else:
                clone._dicts[a] = other._dicts[a]
                col = other._cols[a]
                clone._cols[a] = [col[r] for _, r in pairs]
        clone._tids = [self._tids[r] for r, _ in pairs]
        clone._rows = {tid: i for i, tid in enumerate(clone._tids)}
        clone._dead = set()
        clone._init_derived()
        return clone

    def reorder_columns(self, attributes: Sequence[str]) -> "ColumnStore":
        """The same rows with columns re-ordered to ``attributes``."""
        return self.project_columns(tuple(attributes))

    def extend_from(self, other: "ColumnStore") -> None:
        """Append another store's live rows (caller has rejected dup tids).

        Columns whose dictionaries are shared concatenate code lists
        directly; others decode and re-intern per row.
        """
        dense = not other._dead
        rows = range(len(other._tids)) if dense else other._live_in_order()
        for a in self._attrs:
            col = self._cols[a]
            ocol = other._cols[a]
            if self._dicts[a] is other._dicts[a]:
                if dense:
                    col.extend(ocol)
                else:
                    col.extend(ocol[r] for r in rows)
            else:
                intern = self._dicts[a].intern
                value = other._dicts[a].value
                col.extend(intern(value(ocol[r])) for r in rows)
        for r in rows:
            tid = other._tids[r]
            self._rows[tid] = len(self._tids)
            self._tids.append(tid)
            if self._journal is not None:
                self._note_mutation(
                    (
                        "i",
                        tid,
                        tuple(
                            other._dicts[a].value(other._cols[a][r])
                            for a in self._attrs
                        ),
                    )
                )
            else:
                self._version += 1
        if self._groups:
            self._groups = {}
        if self._masks:
            self._masks = {}

    def bulk_load(self, tuples) -> None:
        """Append many tuples at once (caller has checked tids are fresh)."""
        attrs = self._attrs
        cols = self._cols
        dicts = self._dicts
        rows = self._rows
        tids = self._tids
        for t in tuples:
            rows[t.tid] = len(tids)
            tids.append(t.tid)
            for a in attrs:
                cols[a].append(dicts[a].intern(t[a]))
            if self._journal is not None:
                self._note_mutation(("i", t.tid, tuple(t[a] for a in attrs)))
            else:
                self._version += 1
        if self._groups:
            self._groups = {}
        if self._masks:
            self._masks = {}

    # -- maintenance ---------------------------------------------------------------

    def _compact(self) -> None:
        rows = self._live_in_order()
        self._cols = {a: [col[r] for r in rows] for a, col in self._cols.items()}
        self._tids = [self._tids[r] for r in rows]
        self._rows = {tid: i for i, tid in enumerate(self._tids)}
        self._dead = set()
        # Physical rows were renumbered, so row-indexed caches are stale;
        # the logical contents are unchanged, so the version is not.
        self._groups = {}
        self._masks = {}

    # -- pickling (drop the derived group cache) --------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        return {
            "attrs": self._attrs,
            "dicts": self._dicts,
            "cols": self._cols,
            "tids": self._tids,
            "rows": self._rows,
            "dead": self._dead,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._attrs = state["attrs"]
        self._dicts = state["dicts"]
        self._cols = state["cols"]
        self._tids = state["tids"]
        self._rows = state["rows"]
        self._dead = state["dead"]
        self._init_derived()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnStore({len(self._rows)} rows, {len(self._attrs)} columns)"


def column_store_of(relation: Any) -> ColumnStore | None:
    """The relation's :class:`ColumnStore`, or None for other backends.

    The dispatch hook every vectorized fast path uses: accepts anything
    (relations, plain tuple lists) and answers None unless the object is
    a relation backed by columns.
    """
    store = getattr(relation, "store", None)
    return store if isinstance(store, ColumnStore) else None
