"""Dictionary encoding (value interning) for the columnar backend.

A :class:`ValueDictionary` maps attribute values to small integer codes
and back.  Equality follows Python's ``dict`` semantics: two values that
compare equal (and hash equal) share one code, so grouping rows by code
tuples partitions them exactly like grouping row dicts by value tuples —
the property every vectorized kernel relies on for parity with the row
backend.

Caveats (documented in the README):

* *Equal-but-distinguishable values.*  ``1``, ``1.0`` and ``True``
  compare equal, so they intern to one code whose decoded representative
  is the first value seen.  Detection semantics (which are pure ``==``)
  are unaffected, but a reconstructed tuple may carry ``1`` where the
  original held ``1.0`` — and the cached per-code wire size is the
  representative's, so shipment *byte* counters can drift from the row
  backend when equal values of different widths (``True`` vs ``1``) mix
  in one column.  Columns with such mixes should stay on the ``rows``
  backend.
* *Non-hashable values.*  Values that raise ``TypeError`` under
  ``hash()`` (lists, dicts, ...) fall back to a linear equality scan
  over the unhashable representatives; correct, but O(distinct) per
  intern, so columnar storage is only worthwhile when such values are
  rare.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.distributed.serialization import estimate_value_bytes


class ValueDictionary:
    """An append-only value ↔ code mapping with cached wire-size estimates."""

    __slots__ = ("_codes", "_values", "_unhashable", "_bytes")

    def __init__(self) -> None:
        self._codes: dict[Any, int] = {}
        self._values: list[Any] = []
        self._unhashable: list[tuple[Any, int]] = []
        self._bytes: list[int] = []

    def __len__(self) -> int:
        return len(self._values)

    @property
    def generation(self) -> int:
        """A monotone change counter: the number of codes ever assigned.

        The dictionary is append-only, so an unchanged generation means
        no value gained a code since a caller last looked — the
        invalidation signal for caches of *negative* lookups ("this
        constant has no code").  Positive lookups never invalidate:
        existing codes are stable for the lifetime of the dictionary.
        """
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    # -- encoding ----------------------------------------------------------------

    def intern(self, value: Any) -> int:
        """The code of ``value``, assigning a fresh one on first sight."""
        try:
            code = self._codes.get(value)
        except TypeError:
            return self._intern_unhashable(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
            self._bytes.append(estimate_value_bytes(value))
        return code

    def _intern_unhashable(self, value: Any) -> int:
        for seen, code in self._unhashable:
            if seen == value:
                return code
        code = len(self._values)
        self._unhashable.append((value, code))
        self._values.append(value)
        self._bytes.append(estimate_value_bytes(value))
        return code

    def code_of(self, value: Any) -> int | None:
        """The code of ``value`` if it has been interned, else None."""
        try:
            return self._codes.get(value)
        except TypeError:
            for seen, code in self._unhashable:
                if seen == value:
                    return code
            return None

    # -- decoding ----------------------------------------------------------------

    def value(self, code: int) -> Any:
        """The representative value of ``code`` (first value interned to it)."""
        return self._values[code]

    def values_list(self) -> list[Any]:
        """The code→representative table (do not mutate)."""
        return self._values

    def byte_size(self, code: int) -> int:
        """``estimate_value_bytes`` of the representative, cached per code."""
        return self._bytes[code]

    def byte_sizes(self) -> list[int]:
        """The code→wire-size table (do not mutate)."""
        return self._bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValueDictionary({len(self._values)} distinct values)"
