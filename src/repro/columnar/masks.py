"""Integer bitset row masks for allocation-free violation sweeps.

A *mask* is a plain Python ``int`` whose bit ``r`` is set iff physical
row ``r`` of a :class:`~repro.columnar.store.ColumnStore` belongs to the
set.  Python integers are arbitrary-precision, so one mask covers a
fragment of any size, and the inner CFD sweeps become a handful of
big-int operations (``|``, ``& ~``, ``bit_count``) on cached per-group
masks instead of building a per-tuple ``set`` per CFD per round:

* grouping rows by an LHS key is done once per attribute tuple and
  cached as ``{key: mask}`` on the store;
* "every row of the group whose RHS code is not the majority/constant
  code" is ``group_mask & ~ok_mask`` — no iteration until the final
  decode of the (usually tiny) violating mask back to tids.

Masks are built from *live* physical row indexes, so they are
invalidated (dropped from the store's cache) whenever the store mutates
or compacts.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator


def rows_to_mask(rows: Iterable[int]) -> int:
    """Pack an iterable of physical row indexes into one bitset ``int``."""
    top = -1
    packed = bytearray()
    for r in rows:
        byte = r >> 3
        if byte > top:
            packed.extend(b"\x00" * (byte - top))
            top = byte
        packed[byte] |= 1 << (r & 7)
    return int.from_bytes(packed, "little")


def iter_mask_rows(mask: int) -> Iterator[int]:
    """Yield the set bit positions (physical rows) of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_to_tids(store: Any, mask: int) -> set[Any]:
    """Decode a violation mask back to the tids of its rows."""
    tid_of_row = store.tid_of_row
    return {tid_of_row(r) for r in iter_mask_rows(mask)}
