"""SQL-backed tuple storage over embedded engines (sqlite3 / DuckDB).

A :class:`SqlStore` keeps a relation's tuples in one table of an
embedded SQL engine — stdlib :mod:`sqlite3` by default, file-backed or
``:memory:`` — and satisfies the same
:class:`~repro.core.storage.StorageBackend` protocol as the row and
columnar backends: tuples indexed by tid, O(1) membership, insertion
order preserved (dict semantics: deleted tids drop out, re-inserting a
popped tid moves it to the end, overwriting keeps its place).

The point of the backend is *pushdown*: the detection kernels of
:mod:`repro.sqlstore.kernels` compile CFD checks to set-oriented SQL
(the classic constant/variable two-query formulation) so the filtering
and grouping run inside the engine's C executor over data that never
has to fit in Python memory.  The store itself keeps only a small
``tid -> seq`` dict in Python; everything else lives in the engine,
which for a file-backed store means detection scales past RAM.

Layout and semantics:

* one table ``data(seq INTEGER PRIMARY KEY, tid, a0, a1, ...)`` with
  positional column names (arbitrary attribute names never meet the SQL
  identifier grammar); ``seq`` is a monotonically increasing insertion
  counter, so ``ORDER BY seq`` reproduces dict iteration order;
* values are stored natively for ``str``/``int``/``float``/``None``
  (sqlite's comparison semantics then match Python's: ``1 = 1.0``,
  text never equals numbers, ``IS`` is null-safe equality) and as
  tagged pickle blobs for ``bool`` and any other type, so a decoded
  value is the exact Python object that went in and the wire-size
  estimates of :mod:`repro.distributed.serialization` are reproduced
  byte for byte.  Caveat (same class as the columnar backend's
  interning): cross-type equalities involving tagged values
  (``True == 1``) are not visible to the engine;
* inserts buffer in Python and apply with one ``executemany`` inside
  one transaction per wave — any read flushes first — matching the
  "batched delta apply" the update batches need;
* per-rule compiled SQL is cached on the store (and the connection
  keeps a large prepared-statement cache), so a CFD checked every wave
  compiles once.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import threading
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Iterator, KeysView

from repro.core.schema import Schema
from repro.core.tuples import Tuple
from repro.distributed.serialization import TID_BYTES, estimate_value_bytes

#: Buffered inserts flush to the engine at this size even without a read.
FLUSH_LIMIT = 2000

#: Rows fetched per chunk when streaming iteration / byte estimation.
FETCH_CHUNK = 1024

#: Tag byte prefixing pickled (non-native) values in the engine.
_PICKLE_TAG = b"\x01"

try:  # pragma: no cover - exercised only where duckdb is installed
    import duckdb  # type: ignore

    DUCKDB_AVAILABLE = True
except ImportError:  # pragma: no cover - the container default
    duckdb = None
    DUCKDB_AVAILABLE = False


#: Module configuration for newly created stores (see :func:`configure`).
_CONFIG: dict[str, Any] = {"directory": None}


def configure(directory: str | None = None) -> None:
    """Route newly created sqlite stores to files under ``directory``.

    ``None`` (the default) keeps stores in ``:memory:``.  File-backed
    stores are what make detection out-of-core: the engine pages the
    table through a bounded cache instead of holding it on the Python
    heap.  Each store creates (and on close removes) its own uniquely
    named database file.
    """
    _CONFIG["directory"] = directory


def configured_directory() -> str | None:
    """The directory file-backed stores are currently routed to."""
    return _CONFIG["directory"]


@dataclass(frozen=True)
class SqlDialect:
    """The engine-specific SQL spellings the compiler needs."""

    name: str
    #: Null-safe equality between a column and a placeholder/column.
    eq: str
    #: Null-safe inequality.
    neq: str


SQLITE_DIALECT = SqlDialect(name="sqlite", eq="IS", neq="IS NOT")
DUCKDB_DIALECT = SqlDialect(
    name="duckdb", eq="IS NOT DISTINCT FROM", neq="IS DISTINCT FROM"
)


def encode_value(value: Any) -> Any:
    """Encode a Python value for storage/comparison inside the engine.

    Native for ``str``/``int``/``float``/``None`` (engine equality then
    matches Python's), tagged pickle blob for everything else (equality
    degrades to byte equality of the pickle — exact for ``bool`` and
    deterministic for the simple immutables that appear as data values).
    """
    if value is None or type(value) in (str, int, float):
        return value
    return _PICKLE_TAG + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, bytes):
        return pickle.loads(value[1:])
    return value


class SqlStore:
    """Tuple storage in one embedded-SQL table (sqlite3 engine).

    Satisfies :class:`~repro.core.storage.StorageBackend`; the SQL
    compilation lives in :mod:`repro.sqlstore.compiler` and the
    pushed-down detection scans in :mod:`repro.sqlstore.kernels`.
    """

    name = "sql"
    dialect = SQLITE_DIALECT

    def __init__(self, schema: Schema, path: str | None = None):
        self._attrs: tuple[str, ...] = tuple(schema.attribute_names)
        self._key = schema.key
        self._init_connection(path if path is not None else self._configured_path())

    # -- connection management ---------------------------------------------------------

    def _configured_path(self) -> str | None:
        directory = _CONFIG["directory"]
        if directory is None:
            return None
        os.makedirs(directory, exist_ok=True)
        return os.path.join(
            directory, f"sqlstore_{os.getpid()}_{uuid.uuid4().hex}.db"
        )

    def _init_connection(self, path: str | None) -> None:
        self._path = path
        self._colnames: tuple[str, ...] = tuple(
            f"a{i}" for i in range(len(self._attrs))
        )
        self._col: dict[str, str] = dict(zip(self._attrs, self._colnames))
        self._index: dict[Any, int] = {}
        self._next_seq = 0
        self._pending: list[tuple] = []
        self._sql_cache: dict[Any, str] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._query_count = 0
        self._lock = threading.RLock()
        self._conn = self._connect(path)
        self._create_table()
        placeholders = ", ".join("?" for _ in range(len(self._attrs) + 2))
        self._insert_sql = f"INSERT INTO data VALUES ({placeholders})"
        self._row_cols = ", ".join(self._colnames)

    def _connect(self, path: str | None) -> Any:
        conn = sqlite3.connect(
            path if path is not None else ":memory:",
            check_same_thread=False,
            cached_statements=256,
        )
        conn.isolation_level = None  # explicit BEGIN/COMMIT per flush
        if path is not None:
            # Durability is irrelevant (stores are per-session scratch);
            # a bounded page cache is what keeps the resident set small.
            conn.execute("PRAGMA journal_mode=MEMORY")
            conn.execute("PRAGMA synchronous=OFF")
            conn.execute("PRAGMA cache_size=-2048")  # 2 MiB page cache
        return conn

    def _create_table(self) -> None:
        cols = ", ".join(["seq INTEGER PRIMARY KEY", "tid", *self._colnames])
        self._conn.execute(f"CREATE TABLE data ({cols})")

    def close(self) -> None:
        """Close the connection and remove the backing file (if any)."""
        conn = getattr(self, "_conn", None)
        if conn is None:
            return
        self._conn = None
        try:
            conn.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass
        path = getattr(self, "_path", None)
        if path is not None:
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - already gone
                pass

    def __del__(self):  # pragma: no cover - gc timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- attribute/column metadata -------------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attrs

    @property
    def path(self) -> str | None:
        """The backing database file, or None for ``:memory:``."""
        return self._path

    def column(self, attribute: str) -> str:
        """The physical column name storing ``attribute``."""
        return self._col[attribute]

    # -- write buffering -----------------------------------------------------------------

    def _flush_locked(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self._conn.execute("BEGIN")
        try:
            self._conn.executemany(self._insert_sql, pending)
            self._conn.execute("COMMIT")
        except Exception:
            self._conn.execute("ROLLBACK")
            raise

    def flush(self) -> None:
        """Apply all buffered inserts in one transaction (idempotent)."""
        with self._lock:
            self._flush_locked()

    def _encode_row(self, t: Tuple, seq: int) -> tuple:
        return (
            seq,
            encode_value(t.tid),
            *(encode_value(t[a]) for a in self._attrs),
        )

    # -- StorageBackend protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, tid: Any) -> bool:
        return tid in self._index

    def tids(self) -> KeysView[Any]:
        return self._index.keys()

    def insert(self, t: Tuple) -> None:
        with self._lock:
            seq = self._index.get(t.tid)
            if seq is not None:
                # Overwrite in place: dict semantics keep the position.
                self._flush_locked()
                sets = ", ".join(f"{c} = ?" for c in self._colnames)
                self._conn.execute(
                    f"UPDATE data SET {sets} WHERE seq = ?",
                    (*(encode_value(t[a]) for a in self._attrs), seq),
                )
                return
            seq = self._next_seq
            self._next_seq += 1
            self._index[t.tid] = seq
            self._pending.append(self._encode_row(t, seq))
            if len(self._pending) >= FLUSH_LIMIT:
                self._flush_locked()

    def bulk_load(self, tuples) -> None:
        """Append many tuples at once (caller has checked tids are fresh)."""
        with self._lock:
            for t in tuples:
                seq = self._next_seq
                self._next_seq += 1
                self._index[t.tid] = seq
                self._pending.append(self._encode_row(t, seq))
                if len(self._pending) >= FLUSH_LIMIT:
                    self._flush_locked()
            self._flush_locked()

    def _tuple_from_row(self, row: tuple) -> Tuple:
        # row = (tid, a0, a1, ...)
        return Tuple(
            decode_value(row[0]),
            {a: decode_value(row[i + 1]) for i, a in enumerate(self._attrs)},
        )

    def get(self, tid: Any) -> Tuple | None:
        with self._lock:
            seq = self._index.get(tid)
            if seq is None:
                return None
            self._flush_locked()
            row = self._conn.execute(
                f"SELECT tid, {self._row_cols} FROM data WHERE seq = ?", (seq,)
            ).fetchone()
        return self._tuple_from_row(row)

    def pop(self, tid: Any) -> Tuple | None:
        with self._lock:
            seq = self._index.pop(tid, None)
            if seq is None:
                return None
            self._flush_locked()
            row = self._conn.execute(
                f"SELECT tid, {self._row_cols} FROM data WHERE seq = ?", (seq,)
            ).fetchone()
            self._conn.execute("DELETE FROM data WHERE seq = ?", (seq,))
        return self._tuple_from_row(row)

    def __iter__(self) -> Iterator[Tuple]:
        # Keyset pagination: stream in chunks without holding the lock
        # across yields (and without materializing the table in Python).
        last = -1
        sql = (
            f"SELECT seq, tid, {self._row_cols} FROM data "
            "WHERE seq > ? ORDER BY seq LIMIT ?"
        )
        while True:
            with self._lock:
                self._flush_locked()
                rows = self._conn.execute(sql, (last, FETCH_CHUNK)).fetchall()
            if not rows:
                return
            for row in rows:
                last = row[0]
                yield self._tuple_from_row(row[1:])

    def copy(self) -> "SqlStore":
        clone = object.__new__(type(self))
        clone._attrs = self._attrs
        clone._key = self._key
        clone._init_connection(
            None if self._path is None else self._configured_path()
        )
        with self._lock:
            self._flush_locked()
            self._backup_into(clone)
            clone._index = dict(self._index)
            clone._next_seq = self._next_seq
        return clone

    def _backup_into(self, clone: "SqlStore") -> None:
        self._conn.backup(clone._conn)

    # -- queries (the kernels' entry points) ---------------------------------------------

    def query_all(self, sql: str, params: tuple = ()) -> list:
        """Flush pending writes and fetch a whole result set (locked)."""
        with self._lock:
            self._flush_locked()
            self._query_count += 1
            return self._conn.execute(sql, params).fetchall()

    @property
    def query_count(self) -> int:
        """How many kernel queries this store has executed (``query_all``
        calls — the unit the rule-fusion benchmark gates on)."""
        return self._query_count

    def scan(self, sql: str, params: tuple = ()) -> Iterator[tuple]:
        """Flush and stream a result set chunk-wise (locked per chunk).

        ``sql`` must select ``seq`` as its first column and be written
        against the ``__KEYSET__`` placeholder (``seq > ?`` is appended
        by the caller); used for full-table streams that must not
        materialize in Python.
        """
        with self._lock:
            self._flush_locked()
            cursor = self._conn.execute(sql, params)
            while True:
                rows = cursor.fetchmany(FETCH_CHUNK)
                if not rows:
                    return
                yield from rows

    def estimate_bytes(self, attributes=None) -> int:
        """The row cost model's wire size of the whole store.

        Identical numbers to summing ``estimate_tuple_bytes`` over the
        row backend, computed by cursor iteration without materializing
        Tuples.
        """
        attrs = tuple(attributes) if attributes is not None else self._attrs
        cols = ", ".join(self._col[a] for a in attrs)
        total = 0
        if not attrs:
            return TID_BYTES * len(self)
        for row in self.scan(f"SELECT seq, {cols} FROM data"):
            total += TID_BYTES
            for cell in row[1:]:
                total += estimate_value_bytes(decode_value(cell))
        return total

    def distinct_counts(self) -> dict[str, int]:
        """Exact per-attribute distinct counts, pushed down as aggregates.

        NULLs count as one extra distinct value (Python ``set`` puts
        ``None`` alongside the rest; ``COUNT(DISTINCT ...)`` skips it).
        """
        if not self._attrs:
            return {}
        parts = ", ".join(
            f"COUNT(DISTINCT {c}) + (COUNT(*) > COUNT({c}))" for c in self._colnames
        )
        row = self.query_all(f"SELECT {parts} FROM data")[0]
        return dict(zip(self._attrs, row))

    def select_tids(self, tids, attributes=None) -> list[tuple]:
        """Rows for exactly the given tids via a temp-table semi-join.

        The tids translate to seqs in Python (O(1) each), ship into a
        temp table with one ``executemany`` and join back against the
        primary key — the batch-shipment scan shape for a known tuple
        set.  Unknown tids are skipped.  Returns raw ``(tid, values...)``
        rows in insertion order; callers decode.
        """
        attrs = tuple(attributes) if attributes is not None else self._attrs
        cols = ", ".join(self._col[a] for a in attrs)
        select = f"d.tid{', ' + cols if cols else ''}"
        with self._lock:
            self._flush_locked()
            seqs = [
                (seq,)
                for seq in (self._index.get(tid) for tid in tids)
                if seq is not None
            ]
            self._conn.execute(
                "CREATE TEMP TABLE IF NOT EXISTS ship (seq INTEGER PRIMARY KEY)"
            )
            self._conn.execute("DELETE FROM ship")
            self._conn.executemany("INSERT OR IGNORE INTO ship VALUES (?)", seqs)
            rows = self._conn.execute(
                f"SELECT {select} FROM data d JOIN ship s ON d.seq = s.seq "
                "ORDER BY d.seq"
            ).fetchall()
            self._conn.execute("DELETE FROM ship")
        return rows

    def encode(self, value: Any) -> Any:
        """Encode a query constant the way this engine stores values."""
        return encode_value(value)

    # -- compiled-SQL cache --------------------------------------------------------------

    def cached_sql(self, key: Any, build: Callable[[], str]) -> str:
        """The per-rule compiled SQL cache (text; the connection keeps
        the actual prepared statements)."""
        sql = self._sql_cache.get(key)
        if sql is None:
            self._cache_misses += 1
            sql = build()
            self._sql_cache[key] = sql
        else:
            self._cache_hits += 1
        return sql

    def statement_cache_info(self) -> dict[str, int]:
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._sql_cache),
        }

    # -- pickling (process executors ship fragments by value) ----------------------------

    def __getstate__(self) -> dict[str, Any]:
        with self._lock:
            self._flush_locked()
            rows = self._conn.execute(
                f"SELECT seq, tid, {self._row_cols} FROM data ORDER BY seq"
            ).fetchall()
        return {
            "attrs": self._attrs,
            "key": self._key,
            "rows": rows,
            "next_seq": self._next_seq,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._attrs = tuple(state["attrs"])
        self._key = state["key"]
        # Replicas rebuild in :memory: — a worker's copy is scratch.
        self._init_connection(None)
        rows = state["rows"]
        if rows:
            self._conn.executemany(self._insert_sql, rows)
        self._index = {decode_value(row[1]): row[0] for row in rows}
        self._next_seq = state["next_seq"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self._path or ":memory:"
        return f"SqlStore({len(self)} rows, {len(self._attrs)} columns, {where})"


class DuckStore(SqlStore):  # pragma: no cover - requires optional duckdb
    """The DuckDB engine behind the same compiler (optional dependency).

    Registered as ``storage("duckdb")`` only when :mod:`duckdb` imports.
    DuckDB requires typed columns, so every value (tid included) is
    stored tagged-pickled in BLOB columns; engine equality is byte
    equality of the pickles — exact for same-type values, with the same
    cross-type caveat the sqlite engine documents for tagged values.
    """

    name = "duckdb"
    dialect = DUCKDB_DIALECT

    def __init__(self, schema: Schema):
        if not DUCKDB_AVAILABLE:
            raise RuntimeError(
                "the duckdb storage backend needs the optional 'duckdb' package "
                "(pip install repro[sql])"
            )
        super().__init__(schema, path=None)

    def _connect(self, path: str | None):
        return duckdb.connect(":memory:")

    def _create_table(self) -> None:
        cols = ", ".join(
            ["seq BIGINT PRIMARY KEY", "tid BLOB", *(f"{c} BLOB" for c in self._colnames)]
        )
        self._conn.execute(f"CREATE TABLE data ({cols})")

    def _flush_locked(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self._conn.execute("BEGIN TRANSACTION")
        try:
            self._conn.executemany(self._insert_sql, pending)
            self._conn.execute("COMMIT")
        except Exception:
            self._conn.execute("ROLLBACK")
            raise

    def _encode_row(self, t: Tuple, seq: int) -> tuple:
        return (
            seq,
            _PICKLE_TAG + pickle.dumps(t.tid, protocol=pickle.HIGHEST_PROTOCOL),
            *(
                _PICKLE_TAG + pickle.dumps(t[a], protocol=pickle.HIGHEST_PROTOCOL)
                for a in self._attrs
            ),
        )

    def encode(self, value: Any) -> Any:
        return _PICKLE_TAG + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def _backup_into(self, clone: "SqlStore") -> None:
        rows = self._conn.execute(
            f"SELECT seq, tid, {self._row_cols} FROM data ORDER BY seq"
        ).fetchall()
        if rows:
            clone._conn.executemany(clone._insert_sql, rows)

    def query_all(self, sql: str, params: tuple = ()) -> list:
        with self._lock:
            self._flush_locked()
            self._query_count += 1
            return self._conn.execute(sql, params).fetchall()

    def scan(self, sql: str, params: tuple = ()):
        with self._lock:
            self._flush_locked()
            yield from self._conn.execute(sql, params).fetchall()

    def close(self) -> None:
        conn = getattr(self, "_conn", None)
        if conn is None:
            return
        self._conn = None
        try:
            conn.close()
        except Exception:
            pass


def sql_store_of(relation: Any) -> SqlStore | None:
    """The relation's :class:`SqlStore`, or None for other backends.

    The dispatch hook every pushed-down fast path uses (the twin of
    :func:`repro.columnar.store.column_store_of`): accepts anything and
    answers None unless the object is a relation backed by a SQL engine.
    """
    store = getattr(relation, "store", None)
    return store if isinstance(store, SqlStore) else None
