"""SQL pushdown storage backend over embedded engines.

The package provides the ``"sql"`` storage backend selectable on any
:class:`~repro.core.relation.Relation` (and per detection session via
``repro.session(...).storage("sql")``): each relation's tuples live in
one table of an embedded SQL engine — stdlib :mod:`sqlite3`,
``:memory:`` by default or file-backed via :func:`configure` — and the
CFD hot paths compile to set-oriented SQL (the paper's classic
constant/variable two-query formulation) in
:mod:`repro.sqlstore.kernels` instead of tuple-at-a-time Python loops.
File-backed stores page through a bounded cache, so detection scales
past RAM.

When the optional :mod:`duckdb` package is installed (the ``[sql]``
extra), the same compiler also drives a ``"duckdb"`` engine; without
it, only ``"sql"`` registers and nothing else changes.

Importing the package registers the backends with
:mod:`repro.core.storage`; results and shipment counters are identical
to the row backend for every detector, executor and partitioning (see
``tests/test_sql_parity.py``).
"""

from repro.core.storage import StorageError, register_storage_backend
from repro.sqlstore.store import (
    DUCKDB_AVAILABLE,
    DuckStore,
    SqlStore,
    configure,
    configured_directory,
    decode_value,
    encode_value,
    sql_store_of,
)
from repro.sqlstore import compiler, kernels

try:
    register_storage_backend("sql", SqlStore)
except StorageError:  # pragma: no cover - double registration is harmless
    pass

if DUCKDB_AVAILABLE:  # pragma: no cover - requires optional duckdb
    try:
        register_storage_backend("duckdb", DuckStore)
    except StorageError:
        pass

__all__ = [
    "DUCKDB_AVAILABLE",
    "DuckStore",
    "SqlStore",
    "compiler",
    "configure",
    "configured_directory",
    "decode_value",
    "encode_value",
    "kernels",
    "sql_store_of",
]
