"""Pushed-down CFD detection kernels over a :class:`SqlStore`.

Every kernel is the SQL equivalent of a tuple-at-a-time loop somewhere
in the detectors and produces *identical* results: the store's value
encoding preserves Python equality inside the engine, so filtering and
grouping rows in SQL partitions them exactly like the row backend's
dict grouping, and the decoded projections reproduce
``estimate_tuple_bytes`` byte for byte.  What moves into the engine is
the set-oriented part — pattern filters, LHS grouping, distinct-RHS
counting, semi-joins — which runs in C over data that never has to fit
on the Python heap; what stays in Python is the (much smaller) decoded
result: violating tids, shipment ``(tid, bytes)`` pairs and group
dictionaries the coordinators merge.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterable, Mapping, Sequence

from repro.core.cfd import CFD
from repro.distributed.serialization import TID_BYTES, estimate_value_bytes
from repro.obs import profile as _prof
from repro.sqlstore import compiler
from repro.sqlstore.store import SqlStore, decode_value

# -- violation kernels (CentralizedDetector.violations_of equivalents) ---------------


def constant_violations(cfd: CFD, store: SqlStore) -> set[Any]:
    """``V(phi, D)`` for a constant CFD: one pushed-down WHERE filter."""
    if _prof.enabled:
        _t0 = perf_counter()
    sql, params = compiler.constant_violation_query(store, cfd)
    out = {decode_value(tid) for (tid,) in store.query_all(sql, params)}
    if _prof.enabled:
        _prof.note("sql.constant_query", perf_counter() - _t0, len(store))
    return out


def variable_violations(cfd: CFD, store: SqlStore) -> set[Any]:
    """``V(phi, D)`` for a variable CFD: the grouped two-query formulation."""
    if _prof.enabled:
        _t0 = perf_counter()
    sql, params = compiler.variable_violation_query(store, cfd)
    out = {decode_value(tid) for (tid,) in store.query_all(sql, params)}
    if _prof.enabled:
        _prof.note("sql.variable_query", perf_counter() - _t0, len(store))
    return out


def violations_of(cfd: CFD, store: SqlStore) -> set[Any]:
    """``V(phi, D)`` for one CFD — the SQL twin of the row-backend scan."""
    if cfd.is_constant():
        return constant_violations(cfd, store)
    return variable_violations(cfd, store)


# -- bulk index construction -----------------------------------------------------------


def build_cfd_index(index: Any, store: SqlStore) -> None:
    """Populate a :class:`~repro.indexes.idx.CFDIndex` from one scan.

    The pattern filter and projection run in the engine; the grouped
    loads happen on the decoded ``(tid, X..., B)`` rows — one query per
    rule instead of one pattern probe per tuple per rule.
    """
    if _prof.enabled:
        _t0 = perf_counter()
    cfd = index.cfd
    n_lhs = len(cfd.lhs)
    sql, params = compiler.pattern_scan_query(store, cfd, (*cfd.lhs, cfd.rhs))
    groups: dict[tuple, dict[Any, set[Any]]] = {}
    for row in store.query_all(sql, params):
        key = tuple(decode_value(v) for v in row[1 : 1 + n_lhs])
        rhs_value = decode_value(row[1 + n_lhs])
        groups.setdefault(key, {}).setdefault(rhs_value, set()).add(
            decode_value(row[0])
        )
    for key, by_rhs in groups.items():
        index.load_group(key, by_rhs)
    if _prof.enabled:
        _prof.note("idx.build_sql", perf_counter() - _t0, len(store))


# -- shipment scans (batch baselines) ---------------------------------------------------


def horizontal_batch_scan(
    store: SqlStore, cfd: CFD, want_ship: bool
) -> tuple[list[tuple[Any, int]], dict[tuple, dict[Any, set[Any]]]]:
    """One site's scan for a general CFD in ``batHor``.

    Returns ``(shipments, groups)``: the ``(tid, bytes)`` of every
    pattern-matching tuple (when this site ships for the CFD) and the
    fragment's decoded partial LHS groups for the coordinator merge —
    the filter runs as one pushed-down query, only ``cfd.attributes``
    come back.
    """
    if _prof.enabled:
        _t0 = perf_counter()
    needed = cfd.attributes
    n_lhs = len(cfd.lhs)
    sql, params = compiler.pattern_scan_query(store, cfd, needed)
    ship: list[tuple[Any, int]] = []
    groups: dict[tuple, dict[Any, set[Any]]] = {}
    for row in store.query_all(sql, params):
        tid = decode_value(row[0])
        values = [decode_value(v) for v in row[1:]]
        if want_ship:
            ship.append(
                (tid, TID_BYTES + sum(estimate_value_bytes(v) for v in values))
            )
        key = tuple(values[:n_lhs])
        groups.setdefault(key, {}).setdefault(values[n_lhs], set()).add(tid)
    if _prof.enabled:
        _prof.note("shipment.sql_scan", perf_counter() - _t0, len(store))
    return ship, groups


def constant_ship_scan(
    store: SqlStore, relevant: Sequence[str], constants: Mapping[str, Any]
) -> list[tuple[Any, int]]:
    """``batVer``: (tid, bytes) of tuples whose ``relevant`` projection
    matches the pattern constants (pushed-down WHERE filter)."""
    if _prof.enabled:
        _t0 = perf_counter()
    sql, params = compiler.constant_match_query(store, relevant, dict(constants))
    out = [
        (
            decode_value(row[0]),
            TID_BYTES + sum(estimate_value_bytes(decode_value(v)) for v in row[1:]),
        )
        for row in store.query_all(sql, params)
    ]
    if _prof.enabled:
        _prof.note("shipment.sql_constant_scan", perf_counter() - _t0, len(store))
    return out


def project_ship_scan(
    store: SqlStore, supplied: Sequence[str]
) -> list[tuple[Any, int]]:
    """``batVer``: (tid, bytes) of every tuple's ``supplied`` projection."""
    if _prof.enabled:
        _t0 = perf_counter()
    sql, params = compiler.projection_query(store, supplied)
    out = [
        (
            decode_value(row[0]),
            TID_BYTES + sum(estimate_value_bytes(decode_value(v)) for v in row[1:]),
        )
        for row in store.query_all(sql, params)
    ]
    if _prof.enabled:
        _prof.note("shipment.sql_project_scan", perf_counter() - _t0, len(store))
    return out


def semi_join_ship_scan(
    store: SqlStore, tids: Iterable[Any], attributes: Sequence[str] | None = None
) -> list[tuple[Any, int]]:
    """(tid, bytes) for exactly the given shipped tuples.

    Batch shipment re-scans with a known tuple set push down as a
    temp-table semi-join against the primary key (one ``executemany``
    in, one join out) instead of fetching every row to Python and
    filtering there.  Unknown tids are skipped, matching a scan that
    simply never sees them.
    """
    if _prof.enabled:
        _t0 = perf_counter()
    out = [
        (
            decode_value(row[0]),
            TID_BYTES + sum(estimate_value_bytes(decode_value(v)) for v in row[1:]),
        )
        for row in store.select_tids(tids, attributes)
    ]
    if _prof.enabled:
        _prof.note("shipment.sql_semi_join", perf_counter() - _t0, len(store))
    return out
