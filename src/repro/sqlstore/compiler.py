"""Compile CFD checks to set-oriented SQL (the paper's two-query form).

For a centralized database the paper observes that two SQL queries per
tableau suffice to find ``V(Sigma, D)``: one ``WHERE`` filter for the
constant patterns and one grouped query for the variable patterns.
This module emits exactly those shapes against a
:class:`~repro.sqlstore.store.SqlStore`'s ``data`` table:

* constant CFDs: ``SELECT tid WHERE <lhs pattern> AND rhs IS NOT ?`` —
  a single null-safe filter, no grouping;
* variable CFDs: a grouped subquery over the LHS with
  ``HAVING COUNT(DISTINCT rhs) + (COUNT(*) > COUNT(rhs)) > 1`` (the
  ``COUNT(*)`` term counts NULL as one extra distinct value, matching
  Python's ``None`` dict key), joined back null-safely to enumerate the
  violating tids;
* IDX builds and shipment scans: the pattern filter plus the projection
  the caller needs, grouped in Python from the (small) filtered result.

Every query is compiled once per (store, rule) through the store's
``cached_sql`` cache and parameterized — constants travel as bind
parameters encoded with the store's value encoding, never as SQL text.
Dialect differences (sqlite ``IS`` vs DuckDB ``IS NOT DISTINCT FROM``)
come from the store's :class:`~repro.sqlstore.store.SqlDialect`.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.cfd import CFD, UNNAMED
from repro.sqlstore.store import SqlStore


def pattern_constants(cfd: CFD) -> list[tuple[str, Any]]:
    """The LHS attributes the pattern pins, with their constants."""
    return [
        (a, cfd.pattern.entry(a))
        for a in cfd.lhs
        if cfd.pattern.entry(a) is not UNNAMED
    ]


def pattern_filter(
    store: SqlStore, cfd: CFD, alias: str = ""
) -> tuple[str, tuple[Any, ...]]:
    """``t[X] ~ tp[X]`` as a WHERE conjunction plus bind parameters."""
    prefix = f"{alias}." if alias else ""
    eq = store.dialect.eq
    clauses = []
    params = []
    for a, constant in pattern_constants(cfd):
        clauses.append(f"{prefix}{store.column(a)} {eq} ?")
        params.append(store.encode(constant))
    return " AND ".join(clauses) or "1 = 1", tuple(params)


def constant_violation_query(store: SqlStore, cfd: CFD) -> tuple[str, tuple[Any, ...]]:
    """``V(phi, D)`` for a constant CFD: one pushed-down WHERE filter."""
    where, params = pattern_filter(store, cfd)
    rhs = store.column(cfd.rhs)

    def build() -> str:
        return (
            f"SELECT tid FROM data WHERE {where} "
            f"AND {rhs} {store.dialect.neq} ? ORDER BY seq"
        )

    key = ("const", cfd.lhs, cfd.rhs, tuple(a for a, _ in pattern_constants(cfd)))
    sql = store.cached_sql(key, build)
    return sql, (*params, store.encode(cfd.pattern.entry(cfd.rhs)))


def variable_violation_query(store: SqlStore, cfd: CFD) -> tuple[str, tuple[Any, ...]]:
    """``V(phi, D)`` for a variable CFD: the grouped two-query formulation.

    The subquery finds the LHS groups holding more than one distinct RHS
    value among the pattern-matching tuples; the join re-enumerates the
    member tids.  Both parts repeat the pattern filter, so the
    parameters appear twice.
    """
    lhs_cols = [store.column(a) for a in cfd.lhs]
    rhs = store.column(cfd.rhs)
    eq = store.dialect.eq
    where, params = pattern_filter(store, cfd)
    where_d, _ = pattern_filter(store, cfd, alias="d")

    def build() -> str:
        keys = ", ".join(f"{c} AS k{i}" for i, c in enumerate(lhs_cols))
        group_by = ", ".join(lhs_cols)
        on = " AND ".join(f"d.{c} {eq} g.k{i}" for i, c in enumerate(lhs_cols))
        return (
            f"SELECT d.tid FROM data d JOIN ("
            f"SELECT {keys} FROM data WHERE {where} GROUP BY {group_by} "
            f"HAVING COUNT(DISTINCT {rhs}) + (COUNT(*) > COUNT({rhs})) > 1"
            f") g ON {on} WHERE {where_d} ORDER BY d.seq"
        )

    key = ("var", cfd.lhs, cfd.rhs, tuple(a for a, _ in pattern_constants(cfd)))
    sql = store.cached_sql(key, build)
    return sql, (*params, *params)


def fused_violation_query(
    store: SqlStore, cfds: Sequence[CFD]
) -> tuple[str, tuple[Any, ...]]:
    """One tagged query for a whole fused rule group.

    Each member contributes one ``UNION ALL`` branch — the constant or
    variable shape above, prefixed with its position in ``cfds`` as a
    literal ``rule`` tag column so the caller can split the shared
    result set back into per-rule violation sets.  Branches drop the
    ``ORDER BY`` (compound-select members must not carry one; the
    results are sets).  One engine round-trip replaces one query per
    rule, and the engine shares the table scan across branches.
    """
    parts: list[str] = []
    params: list[Any] = []
    key_parts: list[tuple] = []
    for i, cfd in enumerate(cfds):
        where, p = pattern_filter(store, cfd)
        const_attrs = tuple(a for a, _ in pattern_constants(cfd))
        rhs = store.column(cfd.rhs)
        if cfd.is_constant():
            parts.append(
                f"SELECT {i} AS rule, tid FROM data WHERE {where} "
                f"AND {rhs} {store.dialect.neq} ?"
            )
            params.extend(p)
            params.append(store.encode(cfd.pattern.entry(cfd.rhs)))
            key_parts.append(("const", cfd.lhs, cfd.rhs, const_attrs))
        else:
            lhs_cols = [store.column(a) for a in cfd.lhs]
            eq = store.dialect.eq
            where_d, _ = pattern_filter(store, cfd, alias="d")
            keys = ", ".join(f"{c} AS k{j}" for j, c in enumerate(lhs_cols))
            group_by = ", ".join(lhs_cols)
            on = " AND ".join(f"d.{c} {eq} g.k{j}" for j, c in enumerate(lhs_cols))
            parts.append(
                f"SELECT {i} AS rule, d.tid FROM data d JOIN ("
                f"SELECT {keys} FROM data WHERE {where} GROUP BY {group_by} "
                f"HAVING COUNT(DISTINCT {rhs}) + (COUNT(*) > COUNT({rhs})) > 1"
                f") g ON {on} WHERE {where_d}"
            )
            params.extend(p)
            params.extend(p)
            key_parts.append(("var", cfd.lhs, cfd.rhs, const_attrs))

    def build() -> str:
        return " UNION ALL ".join(parts)

    sql = store.cached_sql(("fused", tuple(key_parts)), build)
    return sql, tuple(params)


def pattern_scan_query(
    store: SqlStore, cfd: CFD, attributes: Sequence[str]
) -> tuple[str, tuple[Any, ...]]:
    """``(tid, attributes...)`` of every pattern-matching tuple, in order.

    The shared workhorse of IDX builds and horizontal batch scans: the
    filter runs in the engine, only the projected columns come back.
    """
    where, params = pattern_filter(store, cfd)
    cols = ", ".join(store.column(a) for a in attributes)

    def build() -> str:
        return f"SELECT tid, {cols} FROM data WHERE {where} ORDER BY seq"

    key = (
        "scan",
        cfd.lhs,
        cfd.rhs,
        tuple(a for a, _ in pattern_constants(cfd)),
        tuple(attributes),
    )
    return store.cached_sql(key, build), params


def constant_match_query(
    store: SqlStore,
    relevant: Sequence[str],
    constants: dict[str, Any],
) -> tuple[str, tuple[Any, ...]]:
    """``(tid, relevant...)`` of tuples matching the given constants.

    The vertical batch detector's constant shipment scan: a site ships
    the ``relevant`` projection of tuples whose constrained attributes
    equal the pattern constants.
    """
    eq = store.dialect.eq
    constrained = [a for a in relevant if a in constants]
    clauses = " AND ".join(f"{store.column(a)} {eq} ?" for a in constrained) or "1 = 1"
    cols = ", ".join(store.column(a) for a in relevant)
    select = f"tid{', ' + cols if cols else ''}"

    def build() -> str:
        return f"SELECT {select} FROM data WHERE {clauses} ORDER BY seq"

    key = ("cmatch", tuple(relevant), tuple(constrained))
    sql = store.cached_sql(key, build)
    return sql, tuple(store.encode(constants[a]) for a in constrained)


def projection_query(
    store: SqlStore, attributes: Sequence[str]
) -> tuple[str, tuple[Any, ...]]:
    """``(tid, attributes...)`` of every tuple (full projection scan)."""
    cols = ", ".join(store.column(a) for a in attributes)
    select = f"tid{', ' + cols if cols else ''}"

    def build() -> str:
        return f"SELECT {select} FROM data ORDER BY seq"

    return store.cached_sql(("proj", tuple(attributes)), build), ()
