"""Batch updates (deltas) to a database.

The paper considers a batch update ``delta-D`` that is a list of tuple
insertions and deletions; a modification is treated as a deletion
followed by an insertion of the same tid.  ``delta-D+`` denotes the
insertions and ``delta-D-`` the deletions.  Both incremental algorithms
begin by removing updates "with the same tuple id and canceling each
other" (line 1 of incVer / incHor); :meth:`UpdateBatch.normalized`
implements that step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.core.relation import Relation
from repro.core.tuples import Tuple


class UpdateKind(enum.Enum):
    """The two primitive update kinds."""

    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class Update:
    """A single tuple insertion or deletion.

    Deletions carry the full tuple (not just the tid) so that vertical
    fragments and indices can be maintained without consulting the base
    relation; this mirrors the paper's assumption that the update stream
    identifies the affected tuples.
    """

    kind: UpdateKind
    tuple: Tuple

    @property
    def tid(self) -> Any:
        return self.tuple.tid

    def is_insert(self) -> bool:
        return self.kind is UpdateKind.INSERT

    def is_delete(self) -> bool:
        return self.kind is UpdateKind.DELETE

    @staticmethod
    def insert(t: Tuple) -> "Update":
        return Update(UpdateKind.INSERT, t)

    @staticmethod
    def delete(t: Tuple) -> "Update":
        return Update(UpdateKind.DELETE, t)


class UpdateBatch:
    """An ordered list of insertions and deletions (``delta-D``)."""

    def __init__(self, updates: Iterable[Update] = ()):
        self._updates: list[Update] = list(updates)

    # -- construction ----------------------------------------------------------

    @classmethod
    def of(cls, *updates: Update) -> "UpdateBatch":
        return cls(updates)

    @classmethod
    def inserts(cls, tuples: Iterable[Tuple]) -> "UpdateBatch":
        return cls(Update.insert(t) for t in tuples)

    @classmethod
    def deletes(cls, tuples: Iterable[Tuple]) -> "UpdateBatch":
        return cls(Update.delete(t) for t in tuples)

    @classmethod
    def modification(cls, old: Tuple, new: Tuple) -> "UpdateBatch":
        """A modification, represented as a deletion followed by an insertion."""
        return cls([Update.delete(old), Update.insert(new)])

    def append(self, update: Update) -> None:
        self._updates.append(update)

    def extend(self, updates: Iterable[Update]) -> None:
        self._updates.extend(updates)

    # -- views -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __getitem__(self, index: int) -> Update:
        return self._updates[index]

    @property
    def insertions(self) -> list[Update]:
        """``delta-D+``: the sub-list of insertions, in order."""
        return [u for u in self._updates if u.is_insert()]

    @property
    def deletions(self) -> list[Update]:
        """``delta-D-``: the sub-list of deletions, in order."""
        return [u for u in self._updates if u.is_delete()]

    def inserted_tuples(self) -> list[Tuple]:
        return [u.tuple for u in self.insertions]

    def deleted_tuples(self) -> list[Tuple]:
        return [u.tuple for u in self.deletions]

    def tids(self) -> set[Any]:
        return {u.tid for u in self._updates}

    # -- normalization -------------------------------------------------------------

    def normalized(self) -> "UpdateBatch":
        """Remove updates that cancel each other (same tid, insert/delete pairs).

        An insertion followed by a deletion of the same tid cancels out
        entirely.  A deletion followed by an insertion of the same tid
        (a modification) is preserved as the ordered pair.  Repeated
        operations of the same kind on the same tid are collapsed to the
        last occurrence.
        """
        surviving: list[Update] = []
        for update in self._updates:
            cancelled = False
            if update.is_delete():
                for i in range(len(surviving) - 1, -1, -1):
                    prior = surviving[i]
                    if prior.tid == update.tid:
                        if prior.is_insert():
                            del surviving[i]
                            cancelled = True
                        break
            if not cancelled:
                for i in range(len(surviving) - 1, -1, -1):
                    prior = surviving[i]
                    if prior.tid == update.tid and prior.kind == update.kind:
                        del surviving[i]
                        break
                surviving.append(update)
        return UpdateBatch(surviving)

    # -- application ------------------------------------------------------------------

    def apply_to(self, relation: Relation) -> Relation:
        """Return ``D (+) delta-D``: a copy of ``relation`` with the batch applied."""
        updated = relation.copy()
        for update in self._updates:
            if update.is_insert():
                updated.insert(update.tuple)
            else:
                updated.discard(update.tid)
        return updated

    def validate_against(self, relation: Relation) -> None:
        """Reject the batch up front if it would double-insert a tid.

        Tracks tid existence through the batch in order, so an
        insert-after-delete is fine while a duplicate insert raises the
        same :class:`~repro.core.relation.RelationError` the relation
        itself would — before anything has mutated.
        """
        from repro.core.relation import RelationError

        seen: dict[Any, bool] = {}
        for update in self._updates:
            tid = update.tid
            exists = seen.get(tid)
            if exists is None:
                exists = tid in relation
            if update.is_insert():
                if exists:
                    raise RelationError(
                        f"duplicate tid {tid!r} in relation {relation.schema.name!r}"
                    )
                seen[tid] = True
            else:
                seen[tid] = False

    def apply_in_place(self, relation: Relation) -> Relation:
        """Apply the batch to ``relation`` itself — ``D (+) delta-D`` without
        the whole-database copy.

        Same outcome as :meth:`apply_to`, but mutating: duplicate-tid
        insertions are rejected up front (see :meth:`validate_against`),
        so a bad batch leaves the relation untouched.  Keeping the
        relation object (and its store) alive across batches is what
        lets warm executors ship deltas instead of fragments.
        """
        self.validate_against(relation)
        for update in self._updates:
            if update.is_insert():
                relation.insert(update.tuple)
            else:
                relation.discard(update.tid)
        return relation

    def project(self, attributes: Sequence[str]) -> "UpdateBatch":
        """``pi_Xi(delta-D)``: the batch restricted to a vertical fragment's attributes."""
        return UpdateBatch(
            Update(u.kind, u.tuple.project(attributes)) for u in self._updates
        )

    def select(self, predicate) -> "UpdateBatch":
        """``sigma_Fi(delta-D)``: the batch restricted to a horizontal fragment."""
        return UpdateBatch(u for u in self._updates if predicate(u.tuple))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_ins = len(self.insertions)
        n_del = len(self.deletions)
        return f"UpdateBatch(+{n_ins}, -{n_del})"
