"""Conditional functional dependencies (CFDs).

A CFD ``phi`` on relation ``R`` is a pair ``(X -> B, tp)`` where
``X -> B`` is a standard functional dependency and ``tp`` is a *pattern
tuple* over ``X`` and ``B`` whose entries are either constants or the
unnamed variable '_' (Section 2.1 of the paper).  The match operator
``~`` (written ``≍`` in the paper) compares a value with a pattern
entry: they match when they are equal or when the pattern entry is '_'.

Semantics: an instance ``D`` satisfies ``phi`` iff for all tuples
``t, t'`` in ``D``, whenever ``t[X] = t'[X] ~ tp[X]`` then
``t[B] = t'[B] ~ tp[B]``.

The module also provides :class:`Tableau`, the equivalent representation
``(X -> B, Tp)`` grouping several pattern tuples over the same embedded
FD, which is what the paper's implementation uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.core.schema import Schema
from repro.core.tuples import Tuple


class CFDError(ValueError):
    """Raised when a CFD definition is malformed."""


class _Unnamed:
    """The unnamed variable '_' used in pattern tuples.

    A dedicated singleton (rather than the string ``"_"``) so that data
    values are never accidentally interpreted as wildcards.
    """

    _instance: "_Unnamed | None" = None

    def __new__(cls) -> "_Unnamed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "_"

    def __deepcopy__(self, memo: dict) -> "_Unnamed":  # pragma: no cover
        return self


#: Singleton wildcard used in pattern tuples.
UNNAMED = _Unnamed()


def pattern_matches(value: Any, pattern_entry: Any) -> bool:
    """The match operator: ``value ~ pattern_entry``.

    True when the pattern entry is the unnamed variable or equals the
    value.  The paper extends the operator pointwise to tuples; callers
    do that with :meth:`PatternTuple.matches`.
    """
    return pattern_entry is UNNAMED or value == pattern_entry


@dataclass(frozen=True)
class PatternTuple:
    """A pattern tuple ``tp`` over a fixed list of attributes."""

    entries: tuple[tuple[str, Any], ...]

    def __init__(self, entries: Mapping[str, Any]):
        object.__setattr__(self, "entries", tuple(entries.items()))

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(a for a, _ in self.entries)

    def entry(self, attribute: str) -> Any:
        for a, v in self.entries:
            if a == attribute:
                return v
        raise CFDError(f"pattern tuple has no entry for attribute {attribute!r}")

    def matches(self, t: Mapping[str, Any], attributes: Iterable[str] | None = None) -> bool:
        """``t[attrs] ~ tp[attrs]`` pointwise (all attrs of the pattern by default)."""
        attrs = tuple(attributes) if attributes is not None else self.attributes
        return all(pattern_matches(t[a], self.entry(a)) for a in attrs)

    def is_constant_on(self, attribute: str) -> bool:
        """Whether the pattern pins ``attribute`` to a constant."""
        return self.entry(attribute) is not UNNAMED

    def as_dict(self) -> dict[str, Any]:
        return dict(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{a}={'_' if v is UNNAMED else repr(v)}" for a, v in self.entries)
        return f"PatternTuple({body})"


class CFD:
    """A conditional functional dependency ``(X -> B, tp)``.

    Parameters
    ----------
    lhs:
        The attributes ``X`` of the embedded FD.
    rhs:
        The single attribute ``B`` on the right-hand side.  (CFDs with a
        multi-attribute RHS can always be normalised into one CFD per
        RHS attribute; the paper, and this implementation, assume that
        normal form.)
    pattern:
        Mapping from every attribute in ``X + [B]`` to either a constant
        or :data:`UNNAMED`.  Attributes omitted from the mapping default
        to :data:`UNNAMED`, so plain FDs can be written as
        ``CFD(["A"], "B")``.
    name:
        Optional identifier used in violation reports; defaults to a
        readable rendering of the rule.
    """

    __slots__ = ("lhs", "rhs", "pattern", "name")

    def __init__(
        self,
        lhs: Sequence[str],
        rhs: str,
        pattern: Mapping[str, Any] | None = None,
        name: str | None = None,
    ):
        lhs = tuple(lhs)
        if not lhs:
            raise CFDError("a CFD needs at least one LHS attribute")
        if len(set(lhs)) != len(lhs):
            raise CFDError(f"duplicate attributes in LHS {lhs}")
        if rhs in lhs:
            raise CFDError(f"RHS attribute {rhs!r} also appears in the LHS")
        full_pattern = {a: UNNAMED for a in (*lhs, rhs)}
        for attr, value in (pattern or {}).items():
            if attr not in full_pattern:
                raise CFDError(
                    f"pattern attribute {attr!r} is not part of the CFD {lhs} -> {rhs}"
                )
            full_pattern[attr] = value
        self.lhs = lhs
        self.rhs = rhs
        self.pattern = PatternTuple(full_pattern)
        self.name = name or self._default_name()

    # -- structure -------------------------------------------------------------

    def _default_name(self) -> str:
        def fmt(attr: str) -> str:
            entry = self.pattern.entry(attr)
            return attr if entry is UNNAMED else f"{attr}={entry!r}"

        lhs = ", ".join(fmt(a) for a in self.lhs)
        return f"[{lhs}] -> [{fmt(self.rhs)}]"

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes mentioned by the CFD (``X`` then ``B``)."""
        return (*self.lhs, self.rhs)

    def is_constant(self) -> bool:
        """True for constant CFDs, i.e. ``tp[B]`` is a constant."""
        return self.pattern.is_constant_on(self.rhs)

    def is_variable(self) -> bool:
        """True for variable CFDs, i.e. ``tp[B]`` is '_'."""
        return not self.is_constant()

    def is_plain_fd(self) -> bool:
        """True when every pattern entry is '_', i.e. the CFD is a plain FD."""
        return all(v is UNNAMED for _, v in self.pattern.entries)

    def validate_against(self, schema: Schema) -> None:
        """Raise :class:`CFDError` if the CFD mentions unknown attributes."""
        for attr in self.attributes:
            if attr not in schema:
                raise CFDError(
                    f"CFD {self.name!r} mentions attribute {attr!r} which is not in "
                    f"schema {schema.name!r}"
                )

    # -- semantics ---------------------------------------------------------------

    def lhs_matches(self, t: Mapping[str, Any]) -> bool:
        """``t[X] ~ tp[X]``: the CFD applies to ``t``."""
        return self.pattern.matches(t, self.lhs)

    def rhs_matches(self, t: Mapping[str, Any]) -> bool:
        """``t[B] ~ tp[B]``."""
        return pattern_matches(t[self.rhs], self.pattern.entry(self.rhs))

    def lhs_values(self, t: Tuple) -> tuple[Any, ...]:
        """The key ``t[X]`` used to group tuples the CFD applies to."""
        return t.values_for(self.lhs)

    def single_tuple_violation(self, t: Mapping[str, Any]) -> bool:
        """Whether ``t`` alone violates the CFD (possible only for constant CFDs).

        Formally this is the case ``t' = t`` of the violation definition:
        ``t[X] = t[X] ~ tp[X]`` and ``t[B] = t[B]`` but ``t[B]`` does not
        match ``tp[B]``.
        """
        return self.lhs_matches(t) and not self.rhs_matches(t)

    def pair_violates(self, t: Mapping[str, Any], other: Mapping[str, Any]) -> bool:
        """Whether the pair ``(t, other)`` violates the CFD.

        ``(t, t') |/= phi`` iff ``t[X] = t'[X] ~ tp[X]`` and either the
        two tuples disagree on ``B`` or they agree but the shared value
        does not match ``tp[B]``.
        """
        if not self.lhs_matches(t):
            return False
        for attr in self.lhs:
            if t[attr] != other[attr]:
                return False
        if t[self.rhs] != other[self.rhs]:
            return True
        return not self.rhs_matches(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CFD({self.name})"

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs, self.pattern.entries))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CFD):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.pattern.entries == other.pattern.entries
        )


@dataclass
class Tableau:
    """The pattern-tableau form ``(X -> B, Tp)`` of a set of CFDs.

    All member CFDs share the same embedded FD ``X -> B``; the tableau
    stores their pattern tuples.  The paper notes that this equivalent
    representation is what their implementation uses; we provide it for
    the same reason (a detector can evaluate all rows of a tableau while
    scanning the ``X``-groups once).
    """

    lhs: tuple[str, ...]
    rhs: str
    rows: list[PatternTuple]
    name: str = ""

    def cfds(self) -> list[CFD]:
        """Expand the tableau back into individual CFDs."""
        out = []
        for i, row in enumerate(self.rows):
            out.append(
                CFD(self.lhs, self.rhs, row.as_dict(), name=f"{self.name or 'tableau'}#{i}")
            )
        return out


def merge_into_tableaux(cfds: Iterable[CFD]) -> list[Tableau]:
    """Group CFDs sharing an embedded FD into pattern tableaux."""
    grouped: dict[tuple[tuple[str, ...], str], Tableau] = {}
    for cfd in cfds:
        key = (cfd.lhs, cfd.rhs)
        if key not in grouped:
            grouped[key] = Tableau(cfd.lhs, cfd.rhs, [], name=f"{'_'.join(cfd.lhs)}__{cfd.rhs}")
        grouped[key].rows.append(cfd.pattern)
    return list(grouped.values())


# -- classification ----------------------------------------------------------------------


def is_locally_checkable(cfd: CFD, partitioner: Any) -> bool:
    """Case (2)(a) of Section 6: local checkability on a horizontal layout.

    True when every fragment's selection predicate only mentions
    attributes of the CFD's LHS (two tuples from different fragments can
    then never agree on the LHS), or when the layout has one fragment.
    ``partitioner`` is duck-typed: anything exposing ``n_fragments`` and
    ``fragments`` whose members carry ``predicate.attributes()`` works,
    so the core stays free of partition-layer imports.
    """
    if partitioner.n_fragments == 1:
        return True
    lhs = set(cfd.lhs)
    for frag in partitioner.fragments:
        attrs = frag.predicate.attributes()
        if not attrs or not attrs <= lhs:
            return False
    return True


def split_local_general(cfds: Iterable[CFD], is_local: Any) -> tuple[list[CFD], list[CFD]]:
    """Partition ``cfds`` into ``(local, general)`` by a predicate.

    Both lists preserve the input order, and membership is by object
    identity (``id()``), so equal-but-distinct CFD objects are never
    conflated — the shared splitter behind the batHor / incHor
    local-vs-general classification, whose ``local`` half feeds the
    fused-group compiler of :mod:`repro.rulefuse`.
    """
    cfds = list(cfds)
    local = [cfd for cfd in cfds if is_local(cfd)]
    local_ids = {id(cfd) for cfd in local}
    general = [cfd for cfd in cfds if id(cfd) not in local_ids]
    return local, general
