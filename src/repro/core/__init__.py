"""Core data model of the reproduction.

This subpackage contains everything that is independent of data
distribution: relational schemas and tuples, conditional functional
dependencies (CFDs) with their pattern-tuple semantics, the violation
semantics ``V(phi, D)`` / ``V(Sigma, D)``, a centralized batch detector
used as the correctness reference throughout the test suite, and the
update (delta) model used by all incremental algorithms.
"""

from repro.core.schema import Attribute, Schema
from repro.core.tuples import Tuple
from repro.core.relation import Relation
from repro.core.cfd import CFD, PatternTuple, UNNAMED, Tableau, merge_into_tableaux
from repro.core.violations import ViolationSet, ViolationDelta
from repro.core.detector import CentralizedDetector, detect_violations
from repro.core.updates import Update, UpdateBatch, UpdateKind

__all__ = [
    "Attribute",
    "Schema",
    "Tuple",
    "Relation",
    "CFD",
    "PatternTuple",
    "UNNAMED",
    "Tableau",
    "merge_into_tableaux",
    "ViolationSet",
    "ViolationDelta",
    "CentralizedDetector",
    "detect_violations",
    "Update",
    "UpdateBatch",
    "UpdateKind",
]
