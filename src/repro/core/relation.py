"""In-memory relations (instances of a schema).

A :class:`Relation` stores tuples indexed by tid and supports the small
set of operations the detection algorithms need: insertion, deletion,
projection (for vertical fragmentation), selection (for horizontal
fragmentation) and reconstruction by join/union.

The physical layout lives behind a pluggable storage backend
(:mod:`repro.core.storage`): the default ``"rows"`` backend keeps one
:class:`~repro.core.tuples.Tuple` per row, the ``"columnar"`` backend of
:mod:`repro.columnar` keeps one dictionary-encoded code array per
attribute.  Both are observably identical through this API; the algebra
below additionally routes projection/selection/join/union through
column-sliced implementations when both operands are columnar.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, KeysView, Mapping

from repro.core.schema import Schema, SchemaError
from repro.core.storage import make_storage
from repro.core.tuples import Tuple


class RelationError(ValueError):
    """Raised on malformed relation operations (duplicate tid, bad attrs)."""


def _column_store_of(relation: Any):
    """The relation's ColumnStore, or None (lazy import keeps core standalone)."""
    from repro.columnar.store import column_store_of

    return column_store_of(relation)


class Relation:
    """A mutable set of tuples conforming to a :class:`Schema`.

    Tuples are indexed by tid; membership tests, lookups, insertions and
    deletions are all O(1).  ``storage`` selects the physical backend by
    registry name (``"rows"`` — the default — or ``"columnar"``); an
    already-built backend instance is also accepted (internal fast
    paths use this to hand over column slices wholesale).
    """

    def __init__(
        self,
        schema: Schema,
        tuples: Iterable[Tuple] = (),
        storage: str | Any = "rows",
    ):
        self._schema = schema
        if isinstance(storage, str):
            self._store = make_storage(storage, schema)
        else:
            self._store = storage
        for t in tuples:
            self.insert(t)

    # -- basic protocol --------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def storage(self) -> str:
        """The storage backend name ("rows", "columnar", ...)."""
        return self._store.name

    @property
    def store(self) -> Any:
        """The storage backend instance (advanced: kernels and diagnostics)."""
        return self._store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._store)

    def __contains__(self, tid: Any) -> bool:
        return tid in self._store

    def get(self, tid: Any) -> Tuple | None:
        """Return the tuple with identifier ``tid`` or ``None``."""
        return self._store.get(tid)

    def __getitem__(self, tid: Any) -> Tuple:
        t = self._store.get(tid)
        if t is None:
            raise RelationError(f"no tuple with tid {tid!r}")
        return t

    def tids(self) -> KeysView[Any]:
        """A set-like *view* of all tuple identifiers.

        The view is cheap (no per-call copy — this sits in hot loops),
        supports iteration, membership and set operators, and reflects
        subsequent mutations; call ``set(...)`` on it for a snapshot.
        """
        return self._store.tids()

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Mapping[str, Any]],
        storage: str = "rows",
    ) -> "Relation":
        """Build a relation from dict-like rows; the key column is the tid."""
        relation = cls(schema, storage=storage)
        for row in rows:
            tid = row[schema.key]
            relation.insert(Tuple(tid, {a: row[a] for a in schema.attribute_names}))
        return relation

    def with_storage(self, storage: str) -> "Relation":
        """This relation re-hosted on the named backend (self if unchanged)."""
        if storage == self.storage:
            return self
        converted = Relation(self._schema, storage=storage)
        bulk = getattr(converted._store, "bulk_load", None)
        if bulk is not None:
            bulk(iter(self))
        else:
            for t in self:
                converted._store.insert(t)
        return converted

    # -- mutation ----------------------------------------------------------------

    def _check(self, t: Tuple) -> None:
        missing = [a for a in self._schema.attribute_names if a not in t]
        if missing:
            raise RelationError(
                f"tuple {t.tid!r} is missing attributes {missing} of schema "
                f"{self._schema.name!r}"
            )
        extra = [a for a in t if a not in self._schema]
        if extra:
            raise RelationError(
                f"tuple {t.tid!r} carries attributes {extra} not in schema "
                f"{self._schema.name!r}"
            )

    def insert(self, t: Tuple) -> None:
        """Insert a tuple; its tid must be fresh."""
        self._check(t)
        if t.tid in self._store:
            raise RelationError(f"duplicate tid {t.tid!r} in relation {self._schema.name!r}")
        self._store.insert(t)

    def delete(self, tid: Any) -> Tuple:
        """Delete and return the tuple with identifier ``tid``."""
        t = self._store.pop(tid)
        if t is None:
            raise RelationError(f"cannot delete unknown tid {tid!r}")
        return t

    def discard(self, tid: Any) -> Tuple | None:
        """Delete the tuple with identifier ``tid`` if present."""
        return self._store.pop(tid)

    def _extend(self, other: "Relation") -> None:
        """Bulk-append another relation's tuples (duplicate tids rejected)."""
        mine = _column_store_of(self)
        theirs = _column_store_of(other)
        if (
            mine is not None
            and theirs is not None
            and set(mine.attributes) == set(theirs.attributes)
        ):
            for tid in theirs.tids():
                if tid in mine:
                    raise RelationError(
                        f"duplicate tid {tid!r} in relation {self._schema.name!r}"
                    )
            mine.extend_from(theirs)
            return
        for t in other:
            self.insert(t)

    # -- algebra -------------------------------------------------------------------

    def project(self, attributes: Iterable[str], name: str | None = None) -> "Relation":
        """Vertical projection onto ``attributes`` (the key is kept)."""
        fragment_schema = self._schema.project(attributes, name=name)
        keep = fragment_schema.attribute_names
        store = _column_store_of(self)
        if store is not None:
            return Relation(fragment_schema, storage=store.project_columns(keep))
        fragment = Relation(fragment_schema, storage=self.storage)
        for t in self:
            fragment.insert(t.project(keep))
        return fragment

    def select(
        self, predicate: Callable[[Tuple], bool], name: str | None = None
    ) -> "Relation":
        """Horizontal selection of the tuples satisfying ``predicate``."""
        fragment_schema = Schema(
            name or f"{self._schema.name}_sel",
            self._schema.attribute_names,
            self._schema.key,
        )
        store = _column_store_of(self)
        if store is not None:
            rows = [r for r in store.iter_rows() if predicate(store.row_view(r))]
            return Relation(fragment_schema, storage=store.take_rows(rows))
        fragment = Relation(fragment_schema, storage=self.storage)
        for t in self:
            if predicate(t):
                fragment.insert(t)
        return fragment

    def join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Key join of two vertical fragments of the same relation.

        Only tids present in both operands survive, matching the natural
        join on the key attribute used by the paper for reconstruction.
        """
        attrs: list[str] = list(self._schema.attribute_names)
        for a in other.schema.attribute_names:
            if a not in attrs:
                attrs.append(a)
        joined_schema = Schema(name or self._schema.name, attrs, self._schema.key)
        mine = _column_store_of(self)
        theirs = _column_store_of(other)
        if mine is not None and theirs is not None:
            return Relation(
                joined_schema,
                storage=mine.join_columns(theirs, joined_schema.attribute_names),
            )
        joined = Relation(joined_schema, storage=self.storage)
        for t in self:
            o = other.get(t.tid)
            if o is not None:
                joined.insert(t.merge(o))
        return joined

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Disjoint union of two horizontal fragments."""
        if set(other.schema.attribute_names) != set(self._schema.attribute_names):
            raise SchemaError("union requires identical attribute sets")
        result_schema = Schema(
            name or self._schema.name,
            self._schema.attribute_names,
            self._schema.key,
        )
        store = _column_store_of(self)
        if store is not None:
            result = Relation(
                result_schema,
                storage=store.project_columns(result_schema.attribute_names),
            )
            result._extend(other)
            return result
        result = Relation(result_schema, storage=self.storage)
        for t in self:
            result.insert(t)
        for t in other:
            result.insert(t)
        return result

    def copy(self) -> "Relation":
        """A shallow copy (tuples are immutable so sharing them is safe)."""
        return Relation(self._schema, storage=self._store.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self._schema.name!r}, {len(self)} tuples, {self.storage})"
