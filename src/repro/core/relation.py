"""In-memory relations (instances of a schema).

A :class:`Relation` stores tuples indexed by tid and supports the small
set of operations the detection algorithms need: insertion, deletion,
projection (for vertical fragmentation), selection (for horizontal
fragmentation) and reconstruction by join/union.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.core.schema import Schema, SchemaError
from repro.core.tuples import Tuple


class RelationError(ValueError):
    """Raised on malformed relation operations (duplicate tid, bad attrs)."""


class Relation:
    """A mutable set of tuples conforming to a :class:`Schema`.

    Tuples are indexed by tid; membership tests, lookups, insertions and
    deletions are all O(1).
    """

    def __init__(self, schema: Schema, tuples: Iterable[Tuple] = ()):
        self._schema = schema
        self._tuples: dict[Any, Tuple] = {}
        for t in tuples:
            self.insert(t)

    # -- basic protocol --------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples.values())

    def __contains__(self, tid: Any) -> bool:
        return tid in self._tuples

    def get(self, tid: Any) -> Tuple | None:
        """Return the tuple with identifier ``tid`` or ``None``."""
        return self._tuples.get(tid)

    def __getitem__(self, tid: Any) -> Tuple:
        try:
            return self._tuples[tid]
        except KeyError:
            raise RelationError(f"no tuple with tid {tid!r}") from None

    def tids(self) -> set[Any]:
        """The set of all tuple identifiers."""
        return set(self._tuples)

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_rows(
        cls, schema: Schema, rows: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from dict-like rows; the key column is the tid."""
        relation = cls(schema)
        for row in rows:
            tid = row[schema.key]
            relation.insert(Tuple(tid, {a: row[a] for a in schema.attribute_names}))
        return relation

    # -- mutation ----------------------------------------------------------------

    def _check(self, t: Tuple) -> None:
        missing = [a for a in self._schema.attribute_names if a not in t]
        if missing:
            raise RelationError(
                f"tuple {t.tid!r} is missing attributes {missing} of schema "
                f"{self._schema.name!r}"
            )
        extra = [a for a in t if a not in self._schema]
        if extra:
            raise RelationError(
                f"tuple {t.tid!r} carries attributes {extra} not in schema "
                f"{self._schema.name!r}"
            )

    def insert(self, t: Tuple) -> None:
        """Insert a tuple; its tid must be fresh."""
        self._check(t)
        if t.tid in self._tuples:
            raise RelationError(f"duplicate tid {t.tid!r} in relation {self._schema.name!r}")
        self._tuples[t.tid] = t

    def delete(self, tid: Any) -> Tuple:
        """Delete and return the tuple with identifier ``tid``."""
        try:
            return self._tuples.pop(tid)
        except KeyError:
            raise RelationError(f"cannot delete unknown tid {tid!r}") from None

    def discard(self, tid: Any) -> Tuple | None:
        """Delete the tuple with identifier ``tid`` if present."""
        return self._tuples.pop(tid, None)

    # -- algebra -------------------------------------------------------------------

    def project(self, attributes: Iterable[str], name: str | None = None) -> "Relation":
        """Vertical projection onto ``attributes`` (the key is kept)."""
        fragment_schema = self._schema.project(attributes, name=name)
        fragment = Relation(fragment_schema)
        keep = fragment_schema.attribute_names
        for t in self:
            fragment.insert(t.project(keep))
        return fragment

    def select(
        self, predicate: Callable[[Tuple], bool], name: str | None = None
    ) -> "Relation":
        """Horizontal selection of the tuples satisfying ``predicate``."""
        fragment_schema = Schema(
            name or f"{self._schema.name}_sel",
            self._schema.attribute_names,
            self._schema.key,
        )
        fragment = Relation(fragment_schema)
        for t in self:
            if predicate(t):
                fragment.insert(t)
        return fragment

    def join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Key join of two vertical fragments of the same relation.

        Only tids present in both operands survive, matching the natural
        join on the key attribute used by the paper for reconstruction.
        """
        attrs: list[str] = list(self._schema.attribute_names)
        for a in other.schema.attribute_names:
            if a not in attrs:
                attrs.append(a)
        joined_schema = Schema(name or self._schema.name, attrs, self._schema.key)
        joined = Relation(joined_schema)
        for t in self:
            o = other.get(t.tid)
            if o is not None:
                joined.insert(t.merge(o))
        return joined

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Disjoint union of two horizontal fragments."""
        if set(other.schema.attribute_names) != set(self._schema.attribute_names):
            raise SchemaError("union requires identical attribute sets")
        result = Relation(
            Schema(
                name or self._schema.name,
                self._schema.attribute_names,
                self._schema.key,
            )
        )
        for t in self:
            result.insert(t)
        for t in other:
            result.insert(t)
        return result

    def copy(self) -> "Relation":
        """A shallow copy (tuples are immutable so sharing them is safe)."""
        clone = Relation(self._schema)
        clone._tuples = dict(self._tuples)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self._schema.name!r}, {len(self)} tuples)"
