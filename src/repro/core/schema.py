"""Relational schemas.

A :class:`Schema` names a relation, fixes an ordered list of attributes
and designates one attribute as the key.  The paper's running example is
the ``EMP`` relation::

    EMP(id, name, sex, grade, street, city, zip, CC, AC, phn, salary, hd)

with ``id`` as the key.  Fragment schemas (for vertical partitions) are
derived with :meth:`Schema.project`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


class SchemaError(ValueError):
    """Raised when a schema is malformed or an attribute is unknown."""


@dataclass(frozen=True)
class Attribute:
    """A single named attribute of a relation schema.

    Attributes are value objects: two attributes with the same name are
    interchangeable.  A lightweight ``domain`` tag ("str", "int", ...)
    is carried for documentation and workload generation; the violation
    semantics never depends on it.
    """

    name: str
    domain: str = "str"

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class Schema:
    """An ordered relation schema with a designated key attribute.

    Parameters
    ----------
    name:
        Relation name, e.g. ``"EMP"``.
    attributes:
        Ordered attribute names (or :class:`Attribute` objects).
    key:
        Name of the key attribute.  Every tuple carries a unique value
        for it; vertical fragments always retain the key so the original
        relation can be reconstructed by joins (Section 2.2 of the
        paper).
    """

    name: str
    attributes: tuple[Attribute, ...]
    key: str

    def __init__(self, name: str, attributes: Sequence[Attribute | str], key: str):
        attrs = tuple(
            a if isinstance(a, Attribute) else Attribute(str(a)) for a in attributes
        )
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema {name!r}: {names}")
        if key not in names:
            raise SchemaError(f"key {key!r} is not an attribute of schema {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "_index", {a.name: i for i, a in enumerate(attrs)})

    # -- basic introspection -------------------------------------------------

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names, in schema order."""
        return tuple(a.name for a in self.attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._index  # type: ignore[attr-defined]

    def __iter__(self) -> Iterator[str]:
        return iter(self.attribute_names)

    def __len__(self) -> int:
        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """Return the 0-based position of ``attribute`` in the schema."""
        try:
            return self._index[attribute]  # type: ignore[attr-defined]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} not in schema {self.name!r}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """Return the :class:`Attribute` object for ``name``."""
        return self.attributes[self.position(name)]

    def validate_attributes(self, names: Iterable[str]) -> tuple[str, ...]:
        """Check that every name is an attribute; return them as a tuple."""
        names = tuple(names)
        for n in names:
            if n not in self:
                raise SchemaError(f"attribute {n!r} not in schema {self.name!r}")
        return names

    # -- derivation ----------------------------------------------------------

    def project(self, attributes: Iterable[str], name: str | None = None) -> "Schema":
        """Return a fragment schema over ``attributes`` (plus the key).

        The key attribute is always included, mirroring the paper's
        requirement that every vertical fragment contains a key of R so
        that D can be reconstructed by joins.
        """
        requested = self.validate_attributes(attributes)
        kept = []
        for attr in self.attribute_names:
            if attr == self.key or attr in requested:
                kept.append(attr)
        return Schema(name or f"{self.name}_frag", kept, self.key)

    def non_key_attributes(self) -> tuple[str, ...]:
        """All attribute names except the key."""
        return tuple(a for a in self.attribute_names if a != self.key)

    def __str__(self) -> str:  # pragma: no cover - trivial
        cols = ", ".join(self.attribute_names)
        return f"{self.name}({cols})"
