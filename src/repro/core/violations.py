"""Violation sets and deltas.

``V(phi, D)`` is the set of tuples of ``D`` that violate the CFD
``phi``; ``V(Sigma, D)`` is the union over all CFDs in ``Sigma``.  The
paper requires violations to be "marked with those CFDs that they
violate" when deltas for several CFDs are combined (Section 4), so a
:class:`ViolationSet` maps each violating tid to the set of names of the
CFDs it violates.

:class:`ViolationDelta` carries the changes ``delta-V = delta-V+ union
delta-V-`` produced by the incremental detectors, again per CFD.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping


class ViolationSet:
    """A set of violating tuples, each tagged with the CFDs it violates."""

    def __init__(self, entries: Mapping[Any, Iterable[str]] | None = None):
        self._by_tid: dict[Any, set[str]] = {}
        if entries:
            for tid, cfd_names in entries.items():
                for name in cfd_names:
                    self.add(tid, name)

    # -- mutation -------------------------------------------------------------

    def add(self, tid: Any, cfd_name: str) -> bool:
        """Mark ``tid`` as violating ``cfd_name``.  Returns True if new."""
        marks = self._by_tid.setdefault(tid, set())
        if cfd_name in marks:
            return False
        marks.add(cfd_name)
        return True

    def remove(self, tid: Any, cfd_name: str) -> bool:
        """Unmark ``tid`` for ``cfd_name``.  Returns True if it was marked."""
        marks = self._by_tid.get(tid)
        if not marks or cfd_name not in marks:
            return False
        marks.discard(cfd_name)
        if not marks:
            del self._by_tid[tid]
        return True

    def discard_tuple(self, tid: Any) -> set[str]:
        """Drop every mark of ``tid`` (used when the tuple is deleted)."""
        return self._by_tid.pop(tid, set())

    def apply(self, delta: "ViolationDelta") -> None:
        """Apply a delta in place: additions then removals."""
        for tid, cfd_name in delta.added_pairs():
            self.add(tid, cfd_name)
        for tid, cfd_name in delta.removed_pairs():
            self.remove(tid, cfd_name)

    # -- queries ---------------------------------------------------------------

    def __contains__(self, tid: Any) -> bool:
        return tid in self._by_tid

    def __len__(self) -> int:
        return len(self._by_tid)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._by_tid)

    def tids(self) -> set[Any]:
        """All violating tuple identifiers."""
        return set(self._by_tid)

    def cfds_of(self, tid: Any) -> set[str]:
        """The names of the CFDs that ``tid`` violates (empty if none)."""
        return set(self._by_tid.get(tid, ()))

    def violates(self, tid: Any, cfd_name: str) -> bool:
        """Whether ``tid`` is marked as violating ``cfd_name``."""
        return cfd_name in self._by_tid.get(tid, ())

    def tids_for(self, cfd_name: str) -> set[Any]:
        """All tids violating a given CFD, i.e. ``V(phi, D)``."""
        return {tid for tid, marks in self._by_tid.items() if cfd_name in marks}

    def as_dict(self) -> dict[Any, set[str]]:
        """A copy of the tid -> {cfd names} mapping."""
        return {tid: set(marks) for tid, marks in self._by_tid.items()}

    def copy(self) -> "ViolationSet":
        clone = ViolationSet()
        clone._by_tid = {tid: set(marks) for tid, marks in self._by_tid.items()}
        return clone

    # -- comparison --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViolationSet):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ViolationSet({len(self._by_tid)} tuples)"


class ViolationDelta:
    """Changes to a violation set: ``delta-V+`` (added) and ``delta-V-`` (removed).

    Both sides are per-CFD sets of tids.  The paper observes that
    insertions only produce ``delta-V+`` and deletions only produce
    ``delta-V-``; the incremental algorithms preserve that property and
    the tests assert it.

    The delta records the *net* effect: adding a (tid, CFD) mark that is
    currently recorded as removed cancels the removal (and vice versa),
    so a batch containing a deletion followed by a re-insertion of the
    same group yields an empty net change and the delta can be applied
    to the old violation set in any order.
    """

    def __init__(self) -> None:
        self._added: dict[Any, set[str]] = {}
        self._removed: dict[Any, set[str]] = {}

    @staticmethod
    def _discard(store: dict[Any, set[str]], tid: Any, cfd_name: str) -> bool:
        names = store.get(tid)
        if names and cfd_name in names:
            names.discard(cfd_name)
            if not names:
                del store[tid]
            return True
        return False

    # -- mutation ----------------------------------------------------------------

    def add(self, tid: Any, cfd_name: str) -> None:
        """Record that ``tid`` becomes a violation of ``cfd_name``."""
        if self._discard(self._removed, tid, cfd_name):
            return
        self._added.setdefault(tid, set()).add(cfd_name)

    def remove(self, tid: Any, cfd_name: str) -> None:
        """Record that ``tid`` stops being a violation of ``cfd_name``."""
        if self._discard(self._added, tid, cfd_name):
            return
        self._removed.setdefault(tid, set()).add(cfd_name)

    def merge(self, other: "ViolationDelta") -> None:
        """Fold another delta into this one (net semantics are preserved)."""
        for tid, names in other._added.items():
            for name in names:
                self.add(tid, name)
        for tid, names in other._removed.items():
            for name in names:
                self.remove(tid, name)

    # -- views -------------------------------------------------------------------

    @property
    def added(self) -> dict[Any, set[str]]:
        """tid -> CFD names newly violated (``delta-V+``)."""
        return {tid: set(names) for tid, names in self._added.items()}

    @property
    def removed(self) -> dict[Any, set[str]]:
        """tid -> CFD names no longer violated (``delta-V-``)."""
        return {tid: set(names) for tid, names in self._removed.items()}

    def added_tids(self) -> set[Any]:
        return set(self._added)

    def removed_tids(self) -> set[Any]:
        return set(self._removed)

    def added_pairs(self) -> Iterator[tuple[Any, str]]:
        for tid, names in self._added.items():
            for name in names:
                yield tid, name

    def removed_pairs(self) -> Iterator[tuple[Any, str]]:
        for tid, names in self._removed.items():
            for name in names:
                yield tid, name

    def is_empty(self) -> bool:
        return not self._added and not self._removed

    def size(self) -> int:
        """|delta-V| counted as the number of (tid, CFD) change pairs."""
        return sum(len(v) for v in self._added.values()) + sum(
            len(v) for v in self._removed.values()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViolationDelta):
            return NotImplemented
        return self.added == other.added and self.removed == other.removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ViolationDelta(+{len(self._added)}, -{len(self._removed)})"


def diff_violations(old: ViolationSet, new: ViolationSet) -> ViolationDelta:
    """Compute the delta turning ``old`` into ``new`` (reference helper)."""
    delta = ViolationDelta()
    old_map = old.as_dict()
    new_map = new.as_dict()
    for tid, names in new_map.items():
        for name in names - old_map.get(tid, set()):
            delta.add(tid, name)
    for tid, names in old_map.items():
        for name in names - new_map.get(tid, set()):
            delta.remove(tid, name)
    return delta
