"""Pluggable tuple-storage backends for :class:`~repro.core.relation.Relation`.

A relation's logical contract — tuples indexed by tid, O(1) membership,
insertion order preserved — is independent of how the tuples are laid
out in memory.  This module defines the small backend protocol the
:class:`~repro.core.relation.Relation` front-end delegates to, plus the
default :class:`RowStore` (one :class:`~repro.core.tuples.Tuple` object
per row, the layout the seed repository used everywhere).

The columnar backend of :mod:`repro.columnar` registers itself here
under the name ``"columnar"``: one code array per attribute with
dictionary-encoded (interned) values and a tid→row index, enabling the
vectorized detection kernels.  Backends are addressable by name so
sessions can select them per run (``repro.session(...).storage("columnar")``)
without the callers caring about the layout.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, KeysView, Protocol, runtime_checkable

from repro.core.schema import Schema
from repro.core.tuples import Tuple


class StorageError(ValueError):
    """Raised on unknown storage backend names or duplicate registrations."""


@runtime_checkable
class StorageBackend(Protocol):
    """The storage contract behind a :class:`~repro.core.relation.Relation`.

    Implementations own the physical layout; the relation front-end owns
    schema validation and error reporting.  Iteration must yield tuples
    in insertion order (deleted tids drop out; re-inserting a tid moves
    it to the end), matching ``dict`` semantics so the two built-in
    backends are observably identical.
    """

    #: Registry name of the backend ("rows", "columnar", ...).
    name: str

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[Tuple]: ...

    def __contains__(self, tid: Any) -> bool: ...

    def get(self, tid: Any) -> Tuple | None:
        """The tuple stored under ``tid``, or None."""
        ...

    def tids(self) -> KeysView[Any]:
        """A live, set-like view of the stored tids (do not mutate)."""
        ...

    def insert(self, t: Tuple) -> None:
        """Store ``t``; the caller has already checked the tid is fresh."""
        ...

    def pop(self, tid: Any) -> Tuple | None:
        """Remove and return the tuple under ``tid`` (None if absent)."""
        ...

    def copy(self) -> "StorageBackend":
        """An independent copy (subsequent mutations must not be shared)."""
        ...


class RowStore:
    """The default backend: one immutable Tuple object per row in a dict."""

    name = "rows"

    __slots__ = ("_tuples",)

    def __init__(self, schema: Schema | None = None):
        self._tuples: dict[Any, Tuple] = {}

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples.values())

    def __contains__(self, tid: Any) -> bool:
        return tid in self._tuples

    def get(self, tid: Any) -> Tuple | None:
        return self._tuples.get(tid)

    def tids(self) -> KeysView[Any]:
        return self._tuples.keys()

    def insert(self, t: Tuple) -> None:
        self._tuples[t.tid] = t

    def pop(self, tid: Any) -> Tuple | None:
        return self._tuples.pop(tid, None)

    def copy(self) -> "RowStore":
        clone = RowStore()
        clone._tuples = dict(self._tuples)
        return clone


#: Registered backend factories: name -> factory(schema) -> StorageBackend.
_BACKENDS: dict[str, Callable[[Schema], Any]] = {"rows": RowStore}


def register_storage_backend(
    name: str, factory: Callable[[Schema], Any], *, replace: bool = False
) -> None:
    """Register a storage backend factory under ``name``.

    ``factory(schema)`` must return an object satisfying
    :class:`StorageBackend`.  Registering an existing name raises
    :class:`StorageError` unless ``replace=True``.
    """
    if name in _BACKENDS and not replace:
        raise StorageError(
            f"storage backend {name!r} is already registered; pass replace=True"
        )
    _BACKENDS[name] = factory


#: Built-in backends living in their own subpackages, registered on
#: import: name -> module to import.  A module may register fewer names
#: than it is listed under (``repro.sqlstore`` only registers
#: ``"duckdb"`` when the optional dependency is installed), so an entry
#: here is a *candidate*, not a promise.
_LAZY_BUILTINS: dict[str, str] = {
    "columnar": "repro.columnar",
    "sql": "repro.sqlstore",
    "duckdb": "repro.sqlstore",
}


def storage_backend_names() -> list[str]:
    """The registered backend names (the built-ins plus any plug-ins).

    Lazy built-ins whose module imports but does not register them
    (optional engines with a missing dependency) are not listed.
    """
    for name in _LAZY_BUILTINS:
        _ensure_builtin(name)
    return sorted(_BACKENDS)


def _ensure_builtin(name: str) -> None:
    # Built-in backends live in their own subpackages and register on
    # import; pull the owning module in lazily so
    # ``Relation(schema, storage="columnar")`` (or ``"sql"``) works even
    # when only repro.core has been imported.
    if name not in _BACKENDS:
        module = _LAZY_BUILTINS.get(name)
        if module is not None:
            import importlib

            importlib.import_module(module)


def make_storage(name: str, schema: Schema) -> Any:
    """Instantiate the backend registered under ``name`` for ``schema``."""
    _ensure_builtin(name)
    try:
        factory = _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise StorageError(
            f"unknown storage backend {name!r}; registered: {known}"
        ) from None
    return factory(schema)
