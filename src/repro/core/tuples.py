"""Tuples of a relation.

A :class:`Tuple` is an immutable mapping from attribute names to values
together with a tuple identifier (``tid``).  The tid plays the role of
the key attribute of the paper's schemas: it is globally unique within a
relation, is preserved by both vertical and horizontal fragmentation,
and is the unit in which violations are reported (``V(Sigma, D)`` is a
set of tuples, identified by their tids).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping


class Tuple(Mapping[str, Any]):
    """An immutable, hashable relational tuple.

    Parameters
    ----------
    tid:
        Unique tuple identifier (the key value).
    values:
        Mapping from attribute name to value.  Values are treated as
        opaque except for equality comparison, which is all the CFD
        semantics requires.
    """

    __slots__ = ("_tid", "_values", "_hash")

    def __init__(self, tid: Any, values: Mapping[str, Any]):
        self._tid = tid
        self._values = dict(values)
        self._hash: int | None = None

    # -- mapping protocol ----------------------------------------------------

    def __getitem__(self, attribute: str) -> Any:
        return self._values[attribute]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- identity ------------------------------------------------------------

    @property
    def tid(self) -> Any:
        """The tuple identifier (key value)."""
        return self._tid

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._tid, frozenset(self._values.items())))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return self._tid == other._tid and self._values == other._values

    # -- projection and helpers ----------------------------------------------

    def values_for(self, attributes: Iterable[str]) -> tuple[Any, ...]:
        """Return the values of ``attributes`` in the given order.

        This is the ``t[X]`` notation of the paper for a list of
        attributes X.
        """
        return tuple(self._values[a] for a in attributes)

    def project(self, attributes: Iterable[str]) -> "Tuple":
        """Return a new tuple restricted to ``attributes`` (same tid)."""
        return Tuple(self._tid, {a: self._values[a] for a in attributes})

    def merge(self, other: "Tuple") -> "Tuple":
        """Join two fragments of the same logical tuple (same tid)."""
        if other.tid != self._tid:
            raise ValueError(
                f"cannot merge tuples with different tids: {self._tid!r} != {other.tid!r}"
            )
        merged = dict(self._values)
        for attr, value in other.items():
            if attr in merged and merged[attr] != value:
                raise ValueError(
                    f"conflicting values for attribute {attr!r} while merging tid {self._tid!r}"
                )
            merged[attr] = value
        return Tuple(self._tid, merged)

    def with_values(self, **updates: Any) -> "Tuple":
        """Return a copy with some attribute values replaced."""
        values = dict(self._values)
        values.update(updates)
        return Tuple(self._tid, values)

    def as_dict(self) -> dict[str, Any]:
        """A plain ``dict`` copy of the attribute values."""
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Tuple(tid={self._tid!r}, {cols})"
