"""Centralized (single-site) CFD violation detection.

For a centralized database the paper notes that two SQL queries suffice
to find ``V(Sigma, D)`` (one for the constant part, one for the variable
part of each tableau).  :class:`CentralizedDetector` is the in-memory
equivalent and serves two roles in this repository:

* the *correctness reference* against which both distributed incremental
  detectors are checked (property tests compare their results tuple for
  tuple), and
* the building block of the distributed batch baselines, which ship data
  to a coordinator and then run centralized detection there.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from repro.core.cfd import CFD
from repro.core.relation import Relation
from repro.core.tuples import Tuple
from repro.core.violations import ViolationSet


def _cfd_violations_task(cfd: CFD, tuples: list[Tuple]) -> set[Any]:
    """``V(phi, D)`` for one CFD — the pure unit the scheduler fans out."""
    return CentralizedDetector.violations_of(cfd, tuples)


def _fused_group_task(cfds: list[CFD], tuples: list[Tuple]) -> list[set[Any]]:
    """``V(phi, D)`` for every member of one fused rule group (pure).

    The members share an LHS attribute list, so the fused kernels sweep
    the data once for the whole group instead of once per CFD.
    """
    from repro.rulefuse import fused_violations

    return fused_violations(cfds, tuples)


class CentralizedDetector:
    """Batch detector for a set of CFDs over an in-memory relation.

    With a :class:`~repro.runtime.scheduler.SiteScheduler`, ``detect``
    fans the checks out as independent tasks — one per fused same-LHS
    rule group by default, one per CFD with ``fusion=False``; without
    one it runs the plain serial loop (the default, used by the many
    setup paths that just need the reference violation set).  Fusion
    changes how many passes the data sees, never the verdicts: fused
    results are violation-identical to the per-rule path.
    """

    def __init__(
        self, cfds: Iterable[CFD], scheduler: Any = None, fusion: bool = True
    ):
        self._cfds = list(cfds)
        self._scheduler = scheduler
        self._fusion = fusion

    @property
    def cfds(self) -> list[CFD]:
        return list(self._cfds)

    # -- per-CFD detection -------------------------------------------------------

    @staticmethod
    def violations_of(cfd: CFD, tuples: Iterable[Tuple]) -> set[Any]:
        """``V(phi, D)`` as a set of tids, for one CFD over arbitrary tuples.

        Constant CFDs are violated by single tuples whose LHS matches
        the pattern but whose RHS value differs from the constant.  For
        variable CFDs, group tuples whose LHS matches the pattern by
        their LHS values; every group holding two or more distinct RHS
        values consists entirely of violations.

        Column-backed relations dispatch to the vectorized kernels
        (identical results, one column sweep shared per LHS); SQL-backed
        relations push the check down as the constant/variable two-query
        formulation and run inside the embedded engine.
        """
        from repro.columnar.store import column_store_of
        from repro.sqlstore.store import sql_store_of

        store = column_store_of(tuples)
        if store is not None:
            from repro.columnar import kernels

            return kernels.violations_of(cfd, store)
        sql_store = sql_store_of(tuples)
        if sql_store is not None:
            from repro.sqlstore import kernels as sql_kernels

            return sql_kernels.violations_of(cfd, sql_store)
        violating: set[Any] = set()
        if cfd.is_constant():
            for t in tuples:
                if cfd.single_tuple_violation(t):
                    violating.add(t.tid)
            return violating

        groups: dict[tuple[Any, ...], dict[Any, set[Any]]] = defaultdict(
            lambda: defaultdict(set)
        )
        for t in tuples:
            if cfd.lhs_matches(t):
                groups[cfd.lhs_values(t)][t[cfd.rhs]].add(t.tid)
        for by_rhs in groups.values():
            if len(by_rhs) > 1:
                for tids in by_rhs.values():
                    violating.update(tids)
        return violating

    # -- full detection -------------------------------------------------------------

    def detect(self, relation: Relation | Iterable[Tuple]) -> ViolationSet:
        """Compute ``V(Sigma, D)`` with per-CFD marks."""
        from repro.columnar.store import column_store_of
        from repro.sqlstore.store import sql_store_of

        # Columnar relations are handed to the tasks whole: the kernels
        # share one grouped-LHS sweep across all CFDs on the same
        # attributes instead of materializing tuples.  SQL-backed
        # relations likewise stay whole so every check runs as a
        # pushed-down query instead of a fetched-row loop.
        if column_store_of(relation) is not None or sql_store_of(relation) is not None:
            tuples: Any = relation
        else:
            tuples = list(relation)
        violations = ViolationSet()
        fused = self._fusion and len(self._cfds) > 1
        if self._scheduler is not None:
            from repro.runtime.executor import SiteTask

            if fused:
                from repro.rulefuse import compile_rule_set

                groups = compile_rule_set(self._cfds)
                tasks = [
                    SiteTask(
                        i,
                        _fused_group_task,
                        (list(group.members), tuples),
                        label="fused:" + ",".join(group.lhs),
                    )
                    for i, group in enumerate(groups)
                ]
                for group, result in zip(groups, self._scheduler.run(tasks)):
                    for cfd, tids in zip(group.members, result.value):
                        for tid in tids:
                            violations.add(tid, cfd.name)
                return violations
            tasks = [
                SiteTask(i, _cfd_violations_task, (cfd, tuples), label=cfd.name)
                for i, cfd in enumerate(self._cfds)
            ]
            for cfd, result in zip(self._cfds, self._scheduler.run(tasks)):
                for tid in result.value:
                    violations.add(tid, cfd.name)
            return violations
        if fused:
            from repro.rulefuse import fused_violations

            for cfd, tids in zip(self._cfds, fused_violations(self._cfds, tuples)):
                for tid in tids:
                    violations.add(tid, cfd.name)
            return violations
        for cfd in self._cfds:
            for tid in self.violations_of(cfd, tuples):
                violations.add(tid, cfd.name)
        return violations


def detect_violations(cfds: Iterable[CFD], relation: Relation | Iterable[Tuple]) -> ViolationSet:
    """Convenience wrapper: ``V(Sigma, D)`` for a set of CFDs over ``relation``."""
    return CentralizedDetector(cfds).detect(relation)
