"""SQL-based centralized CFD detection.

Section 2.3 of the paper recalls that when ``D`` sits in a centralized
DBMS, *two SQL queries* per pattern tableau suffice to find
``V(Sigma, D)``, and that those queries can be generated automatically
(Fan et al., TODS 2008).  This module implements that technique against
SQLite (from the standard library):

* :func:`pattern_table_rows` materialises a tableau's pattern tuples as
  rows of a pattern table, encoding the unnamed variable as ``'_'``;
* :func:`constant_violation_query` / :func:`variable_violation_query`
  generate the two queries — the first catches single-tuple violations
  of constant pattern rows, the second catches pairs of tuples that
  agree on the LHS under a variable pattern row but differ on the RHS;
* :class:`SQLDetector` loads a relation and the pattern tables into an
  in-memory SQLite database, runs the generated queries and returns the
  same :class:`~repro.core.violations.ViolationSet` the in-memory
  centralized detector produces (the test-suite checks the equivalence).

It serves both as documentation of the SQL technique the paper builds on
and as an independent oracle for the other detectors.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable

from repro.core.cfd import CFD, Tableau, UNNAMED, merge_into_tableaux
from repro.core.relation import Relation
from repro.core.violations import ViolationSet

#: How the unnamed variable '_' is encoded inside pattern tables.
WILDCARD = "_"


def _quote_identifier(name: str) -> str:
    """Quote an identifier for SQLite (attribute names may collide with keywords)."""
    return '"' + name.replace('"', '""') + '"'


def _encode(value: Any) -> str:
    """Values are compared as text so that data and pattern columns align."""
    return str(value)


def create_data_table_sql(relation_name: str, attributes: Iterable[str], key: str) -> str:
    """``CREATE TABLE`` statement for the data relation (all columns as TEXT)."""
    columns = ", ".join(f"{_quote_identifier(a)} TEXT" for a in attributes)
    return (
        f"CREATE TABLE {_quote_identifier(relation_name)} "
        f"({columns}, PRIMARY KEY ({_quote_identifier(key)}))"
    )


def create_pattern_table_sql(table_name: str, attributes: Iterable[str]) -> str:
    """``CREATE TABLE`` statement for a tableau's pattern table."""
    columns = ", ".join(f"{_quote_identifier(a)} TEXT" for a in attributes)
    return f"CREATE TABLE {_quote_identifier(table_name)} ({columns})"


def pattern_table_rows(tableau: Tableau) -> list[tuple[str, ...]]:
    """The pattern tuples of a tableau as rows, wildcards encoded as ``'_'``."""
    rows = []
    for pattern in tableau.rows:
        row = []
        for attr in (*tableau.lhs, tableau.rhs):
            entry = pattern.entry(attr)
            row.append(WILDCARD if entry is UNNAMED else _encode(entry))
        rows.append(tuple(row))
    return rows


def _match_conditions(data_alias: str, pattern_alias: str, attributes: Iterable[str]) -> str:
    """The ``t[A] ~ tp[A]`` conjunction: equal or the pattern entry is '_'."""
    clauses = []
    for attr in attributes:
        column = _quote_identifier(attr)
        clauses.append(
            f"({pattern_alias}.{column} = '{WILDCARD}' "
            f"OR {data_alias}.{column} = {pattern_alias}.{column})"
        )
    return " AND ".join(clauses)


def constant_violation_query(relation_name: str, pattern_table: str, tableau: Tableau, key: str) -> str:
    """Single-tuple violations of the tableau's *constant* pattern rows.

    A tuple matching a pattern row on the LHS whose RHS value differs
    from the row's RHS constant violates the CFD on its own.
    """
    t, p = "t", "p"
    rhs = _quote_identifier(tableau.rhs)
    return (
        f"SELECT DISTINCT {t}.{_quote_identifier(key)} AS tid\n"
        f"FROM {_quote_identifier(relation_name)} {t}, {_quote_identifier(pattern_table)} {p}\n"
        f"WHERE {_match_conditions(t, p, tableau.lhs)}\n"
        f"  AND {p}.{rhs} <> '{WILDCARD}'\n"
        f"  AND {t}.{rhs} <> {p}.{rhs}"
    )


def variable_violation_query(relation_name: str, pattern_table: str, tableau: Tableau, key: str) -> str:
    """Pair violations of the tableau's *variable* pattern rows.

    A tuple matching a variable pattern row violates the CFD when some
    other tuple agrees with it on every LHS attribute but differs on the
    RHS.
    """
    t, t2, p = "t", "t2", "p"
    rhs = _quote_identifier(tableau.rhs)
    same_lhs = " AND ".join(
        f"{t2}.{_quote_identifier(a)} = {t}.{_quote_identifier(a)}" for a in tableau.lhs
    )
    return (
        f"SELECT DISTINCT {t}.{_quote_identifier(key)} AS tid\n"
        f"FROM {_quote_identifier(relation_name)} {t}, {_quote_identifier(pattern_table)} {p}\n"
        f"WHERE {_match_conditions(t, p, tableau.lhs)}\n"
        f"  AND {p}.{rhs} = '{WILDCARD}'\n"
        f"  AND EXISTS (\n"
        f"    SELECT 1 FROM {_quote_identifier(relation_name)} {t2}\n"
        f"    WHERE {same_lhs} AND {t2}.{rhs} <> {t}.{rhs}\n"
        f"  )"
    )


class SQLDetector:
    """Centralized CFD detection by running the two generated queries in SQLite."""

    def __init__(self, cfds: Iterable[CFD], relation_name: str = "data"):
        self._cfds = list(cfds)
        self._tableaux = merge_into_tableaux(self._cfds)
        self._relation_name = relation_name

    @property
    def tableaux(self) -> list[Tableau]:
        return list(self._tableaux)

    def queries_for(self, tableau: Tableau, key: str) -> tuple[str, str]:
        """The (constant, variable) query pair for one tableau."""
        pattern_table = self._pattern_table_name(tableau)
        return (
            constant_violation_query(self._relation_name, pattern_table, tableau, key),
            variable_violation_query(self._relation_name, pattern_table, tableau, key),
        )

    @staticmethod
    def _pattern_table_name(tableau: Tableau) -> str:
        return f"tp_{tableau.name}" if tableau.name else "tp"

    # -- loading ------------------------------------------------------------------------

    def _load(self, connection: sqlite3.Connection, relation: Relation) -> None:
        schema = relation.schema
        attributes = schema.attribute_names
        connection.execute(
            create_data_table_sql(self._relation_name, attributes, schema.key)
        )
        placeholders = ", ".join("?" for _ in attributes)
        connection.executemany(
            f"INSERT INTO {_quote_identifier(self._relation_name)} VALUES ({placeholders})",
            [tuple(_encode(t[a]) for a in attributes) for t in relation],
        )
        for tableau in self._tableaux:
            table = self._pattern_table_name(tableau)
            columns = (*tableau.lhs, tableau.rhs)
            connection.execute(create_pattern_table_sql(table, columns))
            row_placeholders = ", ".join("?" for _ in columns)
            connection.executemany(
                f"INSERT INTO {_quote_identifier(table)} VALUES ({row_placeholders})",
                pattern_table_rows(tableau),
            )

    # -- detection ------------------------------------------------------------------------------

    def detect(self, relation: Relation) -> ViolationSet:
        """Run the two queries per tableau and mark violations per original CFD.

        The queries report violating tids per tableau; marks for the
        individual CFDs of the tableau are recovered by re-checking which
        pattern rows the tuple actually falls under (cheap: the tableau's
        CFDs share the embedded FD).
        """
        schema = relation.schema
        violations = ViolationSet()
        with sqlite3.connect(":memory:") as connection:
            self._load(connection, relation)
            tid_by_text = {_encode(t.tid): t.tid for t in relation}
            for tableau in self._tableaux:
                constant_sql, variable_sql = self.queries_for(tableau, schema.key)
                flagged: set[Any] = set()
                for sql in (constant_sql, variable_sql):
                    for (text_tid,) in connection.execute(sql):
                        flagged.add(tid_by_text[text_tid])
                if not flagged:
                    continue
                cfds = [c for c in self._cfds if c.lhs == tableau.lhs and c.rhs == tableau.rhs]
                from repro.core.detector import CentralizedDetector

                for cfd in cfds:
                    for tid in CentralizedDetector.violations_of(cfd, relation):
                        if tid in flagged:
                            violations.add(tid, cfd.name)
        return violations


def detect_violations_sql(cfds: Iterable[CFD], relation: Relation) -> ViolationSet:
    """Convenience wrapper mirroring :func:`repro.core.detector.detect_violations`."""
    return SQLDetector(cfds).detect(relation)
