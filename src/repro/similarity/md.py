"""Matching dependencies (MDs) and their violation semantics.

A matching dependency over a relation R has the form

    (A1 ~1 A1, ..., Am ~m Am)  ->  (B1 = B1, ..., Bk = Bk)

read as: whenever two tuples are pairwise similar on every LHS attribute
(under the per-attribute similarity predicates ~i), they should agree —
or at least match — on every RHS attribute.  MDs generalise FDs/CFDs
from equality to similarity and are the constraint class the paper's
conclusion points to for record matching.

For *error detection* (this repository's concern) we use MDs the same
way CFDs are used: a pair of tuples that satisfies the LHS similarities
but fails an RHS match is an inconsistency, and every tuple involved in
at least one such pair is reported as a violation.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.schema import Schema
from repro.similarity.predicates import ExactMatch, SimilarityPredicate


class MDError(ValueError):
    """Raised when a matching dependency is malformed."""


class MatchingDependency:
    """A matching dependency ``(X ~ X) -> (Y = Y)``.

    Parameters
    ----------
    lhs:
        A sequence of ``(attribute, predicate)`` pairs; a bare attribute
        name is shorthand for ``(attribute, ExactMatch())``.
    rhs:
        The attributes the matched tuples must agree on; each may also
        carry its own predicate (``(attribute, predicate)``), defaulting
        to exact equality.
    name:
        Identifier used in violation reports.
    """

    def __init__(
        self,
        lhs: Sequence[tuple[str, SimilarityPredicate] | str],
        rhs: Sequence[tuple[str, SimilarityPredicate] | str] | str,
        name: str | None = None,
    ):
        self.lhs: tuple[tuple[str, SimilarityPredicate], ...] = tuple(
            self._normalize_item(item) for item in lhs
        )
        if isinstance(rhs, str):
            rhs = [rhs]
        self.rhs: tuple[tuple[str, SimilarityPredicate], ...] = tuple(
            self._normalize_item(item) for item in rhs
        )
        if not self.lhs:
            raise MDError("a matching dependency needs at least one LHS attribute")
        if not self.rhs:
            raise MDError("a matching dependency needs at least one RHS attribute")
        lhs_attrs = [a for a, _ in self.lhs]
        if len(set(lhs_attrs)) != len(lhs_attrs):
            raise MDError(f"duplicate attributes in MD LHS: {lhs_attrs}")
        rhs_attrs = [a for a, _ in self.rhs]
        if set(rhs_attrs) & set(lhs_attrs):
            raise MDError("MD RHS attributes must not repeat LHS attributes")
        self.name = name or self._default_name()

    @staticmethod
    def _normalize_item(
        item: tuple[str, SimilarityPredicate] | str
    ) -> tuple[str, SimilarityPredicate]:
        if isinstance(item, str):
            return item, ExactMatch()
        attribute, predicate = item
        if not isinstance(predicate, SimilarityPredicate):
            raise MDError(f"{predicate!r} is not a SimilarityPredicate")
        return attribute, predicate

    def _default_name(self) -> str:
        lhs = ", ".join(f"{a} {p.describe()}" for a, p in self.lhs)
        rhs = ", ".join(f"{a} {p.describe()}" for a, p in self.rhs)
        return f"[{lhs}] => [{rhs}]"

    # -- structure ------------------------------------------------------------------

    @property
    def lhs_attributes(self) -> tuple[str, ...]:
        return tuple(a for a, _ in self.lhs)

    @property
    def rhs_attributes(self) -> tuple[str, ...]:
        return tuple(a for a, _ in self.rhs)

    @property
    def attributes(self) -> tuple[str, ...]:
        return (*self.lhs_attributes, *self.rhs_attributes)

    def validate_against(self, schema: Schema) -> None:
        """Raise :class:`MDError` if the MD mentions unknown attributes."""
        for attr in self.attributes:
            if attr not in schema:
                raise MDError(
                    f"MD {self.name!r} mentions attribute {attr!r} not in schema {schema.name!r}"
                )

    # -- semantics -------------------------------------------------------------------------

    def lhs_matches(self, left: Mapping[str, Any], right: Mapping[str, Any]) -> bool:
        """Whether the two tuples are similar on every LHS attribute."""
        return all(pred.similar(left[attr], right[attr]) for attr, pred in self.lhs)

    def rhs_matches(self, left: Mapping[str, Any], right: Mapping[str, Any]) -> bool:
        """Whether the two tuples match on every RHS attribute."""
        return all(pred.similar(left[attr], right[attr]) for attr, pred in self.rhs)

    def pair_violates(self, left: Mapping[str, Any], right: Mapping[str, Any]) -> bool:
        """Whether the (unordered) pair of tuples is an inconsistency w.r.t. this MD."""
        return self.lhs_matches(left, right) and not self.rhs_matches(left, right)

    def block_keys(self, t: Mapping[str, Any]) -> dict[str, set]:
        """Per-LHS-attribute blocking keys for a tuple (used by the blocking index)."""
        return {attr: pred.block_keys(t[attr]) for attr, pred in self.lhs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatchingDependency({self.name})"
