"""Incremental detection of matching-dependency violations.

The detector maintains, per MD:

* a :class:`~repro.similarity.blocking.BlockingIndex` over the current
  tuples (the similarity analogue of the HEV/IDX structures), and
* a *partner count* for every tuple — with how many other current tuples
  it forms a violating pair.

A tuple is a violation exactly when its partner count is positive, so
insertions and deletions can maintain the violation set exactly:

* **insert t** — compare ``t`` against the blocking candidates only; for
  every violating pair found, bump both partner counts and mark newly
  positive tuples;
* **delete t** — for every current partner of ``t`` (again found through
  the blocking candidates), decrement its count and unmark it when the
  count reaches zero; drop ``t``'s own marks.

The per-update cost is proportional to the number of blocking
candidates, not to |D| — the similarity counterpart of the paper's
boundedness result, with the caveat the paper itself makes: how sharp
the blocking can be depends on the predicate (edit distance needs the
"more robust indexing techniques" left to future work).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from repro.core.relation import Relation
from repro.core.tuples import Tuple
from repro.core.updates import UpdateBatch
from repro.core.violations import ViolationDelta, ViolationSet
from repro.similarity.blocking import BlockingIndex
from repro.similarity.detector import MDDetector
from repro.similarity.md import MatchingDependency


class IncrementalMDDetector:
    """Maintains MD violations of a single-site relation under updates."""

    def __init__(self, relation: Relation, mds: Iterable[MatchingDependency]):
        self._mds = list(mds)
        schema = relation.schema
        for md in self._mds:
            md.validate_against(schema)
        self._tuples: dict[Any, Tuple] = {t.tid: t for t in relation}
        self._indexes: dict[str, BlockingIndex] = {}
        self._partner_counts: dict[str, dict[Any, int]] = {}
        self._violations = ViolationSet()
        for md in self._mds:
            index = BlockingIndex(md)
            index.build_from(self._tuples.items())
            self._indexes[md.name] = index
            counts: dict[Any, int] = defaultdict(int)
            # Setup pass: count violating partners through the blocking index.
            for tid, t in self._tuples.items():
                for other in index.candidates(t, exclude=tid):
                    if md.pair_violates(t, self._tuples[other]):
                        counts[tid] += 1
            for tid, count in counts.items():
                if count > 0:
                    self._violations.add(tid, md.name)
            self._partner_counts[md.name] = dict(counts)

    # -- public state -------------------------------------------------------------------

    @property
    def mds(self) -> list[MatchingDependency]:
        return list(self._mds)

    @property
    def violations(self) -> ViolationSet:
        """The current MD violation set."""
        return self._violations

    def partner_count(self, md_name: str, tid: Any) -> int:
        """With how many current tuples ``tid`` violates the given MD."""
        return self._partner_counts[md_name].get(tid, 0)

    def current_tuples(self) -> list[Tuple]:
        """The tuples currently held, in insertion order (state export)."""
        return list(self._tuples.values())

    def candidate_count(self, md_name: str, t: Tuple) -> int:
        """How many stored tuples the blocking index would compare ``t`` against.

        Diagnostic for blocking selectivity: the per-update work of the
        incremental detector is proportional to this number, not to the
        relation size.
        """
        return len(self._indexes[md_name].candidates(t, exclude=t.tid))

    def __len__(self) -> int:
        """Number of tuples currently held."""
        return len(self._tuples)

    # -- mark helpers -----------------------------------------------------------------------

    def _bump(self, delta: ViolationDelta, md_name: str, tid: Any, amount: int) -> None:
        counts = self._partner_counts[md_name]
        old = counts.get(tid, 0)
        new = old + amount
        if new < 0:
            raise RuntimeError(f"partner count of {tid!r} for {md_name!r} went negative")
        if new:
            counts[tid] = new
        else:
            counts.pop(tid, None)
        if old == 0 and new > 0:
            if self._violations.add(tid, md_name):
                delta.add(tid, md_name)
        elif old > 0 and new == 0:
            if self._violations.remove(tid, md_name):
                delta.remove(tid, md_name)

    # -- single updates ----------------------------------------------------------------------

    def _insert(self, t: Tuple, delta: ViolationDelta) -> None:
        if t.tid in self._tuples:
            raise ValueError(f"tuple {t.tid!r} is already present")
        for md in self._mds:
            index = self._indexes[md.name]
            for other_tid in index.candidates(t, exclude=t.tid):
                if md.pair_violates(t, self._tuples[other_tid]):
                    self._bump(delta, md.name, other_tid, +1)
                    self._bump(delta, md.name, t.tid, +1)
            index.add(t.tid, t)
        self._tuples[t.tid] = t

    def _delete(self, t: Tuple, delta: ViolationDelta) -> None:
        stored = self._tuples.pop(t.tid, None)
        if stored is None:
            raise ValueError(f"tuple {t.tid!r} is not present")
        for md in self._mds:
            index = self._indexes[md.name]
            index.remove(t.tid)
            for other_tid in index.candidates(stored, exclude=t.tid):
                if md.pair_violates(stored, self._tuples[other_tid]):
                    self._bump(delta, md.name, other_tid, -1)
                    self._bump(delta, md.name, t.tid, -1)
            # Whatever partners remain accounted to the deleted tuple, it is gone.
            remaining = self._partner_counts[md.name].pop(t.tid, 0)
            if remaining:
                raise RuntimeError(
                    f"deleted tuple {t.tid!r} still had {remaining} unexplained partners "
                    f"for MD {md.name!r}; blocking keys are not complete"
                )
            if self._violations.remove(t.tid, md.name):
                delta.remove(t.tid, md.name)

    # -- batch updates ----------------------------------------------------------------------------

    def apply(self, updates: UpdateBatch) -> ViolationDelta:
        """Process a batch of updates and return the net change to the violations."""
        delta = ViolationDelta()
        for update in updates.normalized():
            if update.is_insert():
                self._insert(update.tuple, delta)
            else:
                self._delete(update.tuple, delta)
        return delta

    # -- verification helper -------------------------------------------------------------------------

    def recompute(self) -> ViolationSet:
        """Recompute the violations from scratch (used by tests and diagnostics)."""
        return MDDetector(self._mds).detect(self._tuples.values())
