"""Similarity predicates for matching dependencies.

A similarity predicate decides whether two attribute values "match"
(approximately agree).  Unlike the equality comparison underlying CFDs,
similarity is generally not transitive, so values cannot be grouped into
equivalence classes and the HEV/IDX machinery does not apply directly.
What replaces the equality hash bucket is a *blocking key*: every
predicate maps a value to a small set of keys such that

    if ``similar(a, b)`` then ``block_keys(a) ∩ block_keys(b) != ∅``.

That completeness contract lets an index restrict candidate comparisons
to tuples sharing a key without ever missing a genuine match.  The
fallback implementation uses a single universal key (no pruning, always
complete); predicates with better structure override it.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from typing import Any, Hashable


class SimilarityPredicate(ABC):
    """Decides whether two attribute values approximately match."""

    #: The key every value falls back to when no sharper blocking exists.
    UNIVERSAL_KEY: Hashable = ("*",)

    @abstractmethod
    def similar(self, left: Any, right: Any) -> bool:
        """Whether the two values match under this predicate."""

    def block_keys(self, value: Any) -> set[Hashable]:
        """Blocking keys for ``value``.

        Completeness contract: two similar values always share at least
        one key.  The default is a single universal key, which prunes
        nothing but is always correct.
        """
        return {self.UNIVERSAL_KEY}

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class ExactMatch(SimilarityPredicate):
    """Plain equality — the degenerate case that CFDs use."""

    def similar(self, left: Any, right: Any) -> bool:
        return left == right

    def block_keys(self, value: Any) -> set[Hashable]:
        return {("=", value)}

    def describe(self) -> str:
        return "="


class NormalizedStringMatch(SimilarityPredicate):
    """Case-, whitespace- and punctuation-insensitive string equality.

    Typical for names and addresses: ``"J.  Smith"`` matches
    ``"j smith"``.  Blocking on the normal form is exact, so the index
    prunes as well as a hash on the raw value would for equality.
    """

    _STRIP = re.compile(r"[^a-z0-9 ]+")
    _SPACES = re.compile(r"\s+")

    def normalize(self, value: Any) -> str:
        text = str(value).lower()
        text = self._STRIP.sub(" ", text)
        return self._SPACES.sub(" ", text).strip()

    def similar(self, left: Any, right: Any) -> bool:
        return self.normalize(left) == self.normalize(right)

    def block_keys(self, value: Any) -> set[Hashable]:
        return {("~s", self.normalize(value))}

    def describe(self) -> str:
        return "normalized="


class NumericTolerance(SimilarityPredicate):
    """``|left - right| <= tolerance`` for numeric values.

    Blocking buckets the number line into tolerance-wide cells and emits
    the value's cell plus both neighbours; values within the tolerance
    have cell indices that differ by at most two (the bound is tight when
    the difference equals the tolerance across a cell boundary), so they
    always share a key.  Non-numeric values never match anything numeric.
    """

    def __init__(self, tolerance: float):
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.tolerance = float(tolerance)

    @staticmethod
    def _as_number(value: Any) -> float | None:
        if isinstance(value, bool):
            return None
        if isinstance(value, (int, float)):
            return float(value)
        try:
            return float(str(value))
        except (TypeError, ValueError):
            return None

    def similar(self, left: Any, right: Any) -> bool:
        a, b = self._as_number(left), self._as_number(right)
        if a is None or b is None:
            return False
        return abs(a - b) <= self.tolerance

    def block_keys(self, value: Any) -> set[Hashable]:
        number = self._as_number(value)
        if number is None:
            return {("num", None)}
        cell = int(number // self.tolerance)
        return {("num", cell - 1), ("num", cell), ("num", cell + 1)}

    def describe(self) -> str:
        return f"within {self.tolerance}"


class JaccardSimilarity(SimilarityPredicate):
    """Jaccard similarity over whitespace tokens, thresholded.

    ``similar(a, b)`` iff ``|tokens(a) ∩ tokens(b)| / |tokens(a) ∪ tokens(b)| >= threshold``.
    Every token is a blocking key: two token sets with a non-zero Jaccard
    coefficient share at least one token, so blocking is complete for any
    positive threshold.
    """

    def __init__(self, threshold: float = 0.5):
        if not 0 < threshold <= 1:
            raise ValueError("threshold must lie in (0, 1]")
        self.threshold = threshold

    @staticmethod
    def tokens(value: Any) -> frozenset[str]:
        return frozenset(str(value).lower().split())

    def similar(self, left: Any, right: Any) -> bool:
        a, b = self.tokens(left), self.tokens(right)
        if not a and not b:
            return True
        union = a | b
        if not union:
            return False
        return len(a & b) / len(union) >= self.threshold

    def block_keys(self, value: Any) -> set[Hashable]:
        toks = self.tokens(value)
        if not toks:
            return {("tok", "")}
        return {("tok", token) for token in toks}

    def describe(self) -> str:
        return f"jaccard>={self.threshold}"


class EditDistanceSimilarity(SimilarityPredicate):
    """Levenshtein edit distance, thresholded.

    ``similar(a, b)`` iff the edit distance between the two strings is at
    most ``max_distance``.  Robust blocking for edit distance (q-gram
    count filtering, length filtering) is exactly the "more robust
    indexing techniques" the paper defers to future work; this predicate
    keeps the always-complete universal blocking key, so incremental
    detection still works but compares an update against every candidate
    in the block.
    """

    def __init__(self, max_distance: int = 1):
        if max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        self.max_distance = max_distance

    @staticmethod
    def distance(left: str, right: str, cutoff: int | None = None) -> int:
        """Levenshtein distance with an optional early-exit cutoff."""
        a, b = str(left), str(right)
        if a == b:
            return 0
        if len(a) > len(b):
            a, b = b, a
        if cutoff is not None and len(b) - len(a) > cutoff:
            return cutoff + 1
        previous = list(range(len(a) + 1))
        for i, cb in enumerate(b, start=1):
            current = [i]
            best = i
            for j, ca in enumerate(a, start=1):
                cost = 0 if ca == cb else 1
                value = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
                current.append(value)
                if value < best:
                    best = value
            if cutoff is not None and best > cutoff:
                return cutoff + 1
            previous = current
        return previous[-1]

    def similar(self, left: Any, right: Any) -> bool:
        return self.distance(str(left), str(right), cutoff=self.max_distance) <= self.max_distance

    def describe(self) -> str:
        return f"edit<={self.max_distance}"
