"""Extension: matching dependencies (MDs) with similarity predicates.

The paper's conclusion lists as future work extending the approach "to
support constraints defined in terms of similarity predicates (e.g.,
matching dependencies for record matching) beyond equality comparison,
for which hash-based indices may not work and more robust indexing
techniques need to be explored."  This subpackage implements that
extension for the centralized / single-site setting:

* :mod:`repro.similarity.predicates` — similarity predicates (exact,
  normalized string, numeric tolerance, Jaccard over token sets,
  Levenshtein edit distance), each optionally exposing *blocking keys*
  that replace the equality hash buckets of CFD detection;
* :mod:`repro.similarity.md` — matching dependencies ``(X ~ X) -> (Y = Y)``
  and their violation semantics over tuple pairs;
* :mod:`repro.similarity.blocking` — the blocking index standing in for
  HEV/IDX when equality hashing no longer applies;
* :mod:`repro.similarity.detector` — the exhaustive pairwise reference
  detector;
* :mod:`repro.similarity.incremental` — an incremental MD violation
  detector whose per-update cost is proportional to the number of
  blocking candidates, with exact maintenance of the violation set via
  per-tuple partner counts.
"""

from repro.similarity.predicates import (
    EditDistanceSimilarity,
    ExactMatch,
    JaccardSimilarity,
    NormalizedStringMatch,
    NumericTolerance,
    SimilarityPredicate,
)
from repro.similarity.md import MatchingDependency
from repro.similarity.blocking import BlockingIndex
from repro.similarity.detector import MDDetector, detect_md_violations
from repro.similarity.incremental import IncrementalMDDetector

__all__ = [
    "SimilarityPredicate",
    "ExactMatch",
    "NormalizedStringMatch",
    "NumericTolerance",
    "JaccardSimilarity",
    "EditDistanceSimilarity",
    "MatchingDependency",
    "BlockingIndex",
    "MDDetector",
    "detect_md_violations",
    "IncrementalMDDetector",
]
