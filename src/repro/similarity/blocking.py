"""Blocking index for matching dependencies.

CFD detection hashes tuples into equivalence classes; similarity is not
transitive, so an MD detector instead uses *blocking*: every tuple is
filed, per LHS attribute, under the blocking keys of its value, and two
tuples need to be compared only if they share a key on **every** LHS
attribute (predicate completeness guarantees that similar values share a
key, so the conjunction over attributes never loses a genuine match).

The index stores only tuple ids; the detectors keep the tuples
themselves.  Maintenance is O(#keys) per insert/delete, candidate lookup
is the intersection of per-attribute key-bucket unions.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

from repro.similarity.md import MatchingDependency


class BlockingIndex:
    """Per-MD blocking index: LHS attribute -> blocking key -> tuple ids."""

    def __init__(self, md: MatchingDependency):
        self._md = md
        self._buckets: dict[str, dict[Hashable, set[Any]]] = {
            attr: {} for attr in md.lhs_attributes
        }
        self._keys_by_tid: dict[Any, dict[str, set[Hashable]]] = {}

    @property
    def md(self) -> MatchingDependency:
        return self._md

    def __len__(self) -> int:
        return len(self._keys_by_tid)

    def __contains__(self, tid: Any) -> bool:
        return tid in self._keys_by_tid

    # -- maintenance ------------------------------------------------------------------

    def add(self, tid: Any, t: Mapping[str, Any]) -> None:
        """Index a tuple under its blocking keys."""
        if tid in self._keys_by_tid:
            raise ValueError(f"tuple {tid!r} is already indexed")
        per_attr = self._md.block_keys(t)
        self._keys_by_tid[tid] = per_attr
        for attr, keys in per_attr.items():
            buckets = self._buckets[attr]
            for key in keys:
                buckets.setdefault(key, set()).add(tid)

    def remove(self, tid: Any) -> None:
        """Drop a tuple from every bucket it appears in."""
        per_attr = self._keys_by_tid.pop(tid, None)
        if per_attr is None:
            raise KeyError(f"tuple {tid!r} is not indexed")
        for attr, keys in per_attr.items():
            buckets = self._buckets[attr]
            for key in keys:
                bucket = buckets.get(key)
                if bucket is not None:
                    bucket.discard(tid)
                    if not bucket:
                        del buckets[key]

    def build_from(self, tuples: Iterable[tuple[Any, Mapping[str, Any]]]) -> None:
        for tid, t in tuples:
            self.add(tid, t)

    # -- candidate lookup ----------------------------------------------------------------

    def candidates(self, t: Mapping[str, Any], exclude: Any = None) -> set[Any]:
        """Tuple ids that could possibly satisfy the MD's LHS against ``t``.

        For every LHS attribute, collect the union of the buckets of
        ``t``'s keys; the candidates are the intersection over the
        attributes.  Tuples outside the result are guaranteed not to be
        LHS-similar to ``t``.
        """
        result: set[Any] | None = None
        for attr, keys in self._md.block_keys(t).items():
            buckets = self._buckets[attr]
            union: set[Any] = set()
            for key in keys:
                union |= buckets.get(key, set())
            result = union if result is None else (result & union)
            if not result:
                return set()
        assert result is not None
        if exclude is not None:
            result.discard(exclude)
        return result

    def bucket_sizes(self) -> dict[str, int]:
        """Number of buckets per LHS attribute (diagnostics for selectivity)."""
        return {attr: len(buckets) for attr, buckets in self._buckets.items()}
