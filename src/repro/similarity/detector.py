"""Batch (reference) detection of matching-dependency violations.

The exhaustive detector compares every pair of tuples and is the
correctness reference for the incremental detector, exactly as the
centralized CFD detector is for incVer/incHor.  A blocked variant uses
the :class:`~repro.similarity.blocking.BlockingIndex` to skip pairs that
cannot be LHS-similar; with complete blocking keys the two produce the
same result, which the test-suite asserts.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Iterable

from repro.core.tuples import Tuple
from repro.core.violations import ViolationSet
from repro.similarity.blocking import BlockingIndex
from repro.similarity.md import MatchingDependency


def _md_violations_task(
    md: MatchingDependency, tuples: list[Tuple], use_blocking: bool
) -> set[Any]:
    """Candidate matching for one MD — the pure unit the scheduler fans out."""
    if use_blocking:
        return MDDetector.violations_of_blocked(md, tuples)
    return MDDetector.violations_of(md, tuples)


class MDDetector:
    """Batch detector for a set of matching dependencies.

    With a :class:`~repro.runtime.scheduler.SiteScheduler`, ``detect``
    runs the candidate matching of every MD as one independent task;
    without one it loops serially (the default).
    """

    def __init__(
        self,
        mds: Iterable[MatchingDependency],
        use_blocking: bool = True,
        scheduler: Any = None,
    ):
        self._mds = list(mds)
        self._use_blocking = use_blocking
        self._scheduler = scheduler

    @property
    def mds(self) -> list[MatchingDependency]:
        return list(self._mds)

    # -- per-MD detection ------------------------------------------------------------

    @staticmethod
    def violations_of(md: MatchingDependency, tuples: Iterable[Tuple]) -> set[Any]:
        """Exhaustive pairwise detection of one MD (quadratic, reference only)."""
        items = list(tuples)
        violating: set[Any] = set()
        for left, right in combinations(items, 2):
            if md.pair_violates(left, right):
                violating.add(left.tid)
                violating.add(right.tid)
        return violating

    @staticmethod
    def violations_of_blocked(md: MatchingDependency, tuples: Iterable[Tuple]) -> set[Any]:
        """Detection of one MD using the blocking index to prune comparisons."""
        items = {t.tid: t for t in tuples}
        index = BlockingIndex(md)
        index.build_from((tid, t) for tid, t in items.items())
        violating: set[Any] = set()
        for tid, t in items.items():
            for other_tid in index.candidates(t, exclude=tid):
                if other_tid in violating and tid in violating:
                    continue
                if md.pair_violates(t, items[other_tid]):
                    violating.add(tid)
                    violating.add(other_tid)
        return violating

    # -- full detection -----------------------------------------------------------------

    def detect(self, relation: Iterable[Tuple]) -> ViolationSet:
        """All MD violations, each tuple marked with the MDs it violates."""
        tuples = list(relation)
        violations = ViolationSet()
        if self._scheduler is not None:
            from repro.runtime.executor import SiteTask

            tasks = [
                SiteTask(
                    i,
                    _md_violations_task,
                    (md, tuples, self._use_blocking),
                    label=md.name,
                )
                for i, md in enumerate(self._mds)
            ]
            for md, result in zip(self._mds, self._scheduler.run(tasks)):
                for tid in result.value:
                    violations.add(tid, md.name)
            return violations
        for md in self._mds:
            if self._use_blocking:
                violating = self.violations_of_blocked(md, tuples)
            else:
                violating = self.violations_of(md, tuples)
            for tid in violating:
                violations.add(tid, md.name)
        return violations


def detect_md_violations(
    mds: Iterable[MatchingDependency], relation: Iterable[Tuple], use_blocking: bool = True
) -> ViolationSet:
    """Convenience wrapper mirroring :func:`repro.core.detector.detect_violations`."""
    return MDDetector(mds, use_blocking=use_blocking).detect(relation)
