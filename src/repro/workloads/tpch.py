"""A synthetic, deterministic TPCH-like workload.

The paper's large-scale experiments join all TPC-H tables into a single
wide relation of up to 10M tuples (10GB) hosted on EC2.  This generator
produces a structurally equivalent denormalised table: every row mixes
customer, part, supplier and lineitem attributes, a family of functional
dependencies holds on clean data by construction (e.g. nation determines
region, part name determines brand), and a configurable fraction of rows
carries injected errors that turn into CFD violations.  Scaling is
linear in the requested number of rows and fully reproducible from the
seed, so the experiment harness can sweep |D| and |delta-D| exactly as
the paper does — only at laptop scale.
"""

from __future__ import annotations

import random

from repro.core.relation import Relation
from repro.core.schema import Schema
from repro.core.tuples import Tuple
from repro.partition.horizontal import HorizontalPartitioner, hash_horizontal_scheme
from repro.partition.vertical import VerticalPartitioner, even_vertical_scheme
from repro.workloads.rules import FDSpec

_NATIONS = [
    ("ALGERIA", "AFRICA"), ("ARGENTINA", "AMERICA"), ("BRAZIL", "AMERICA"),
    ("CANADA", "AMERICA"), ("EGYPT", "MIDDLE EAST"), ("ETHIOPIA", "AFRICA"),
    ("FRANCE", "EUROPE"), ("GERMANY", "EUROPE"), ("INDIA", "ASIA"),
    ("INDONESIA", "ASIA"), ("IRAN", "MIDDLE EAST"), ("IRAQ", "MIDDLE EAST"),
    ("JAPAN", "ASIA"), ("JORDAN", "MIDDLE EAST"), ("KENYA", "AFRICA"),
    ("MOROCCO", "AFRICA"), ("MOZAMBIQUE", "AFRICA"), ("PERU", "AMERICA"),
    ("CHINA", "ASIA"), ("ROMANIA", "EUROPE"), ("SAUDI ARABIA", "MIDDLE EAST"),
    ("VIETNAM", "ASIA"), ("RUSSIA", "EUROPE"), ("UNITED KINGDOM", "EUROPE"),
    ("UNITED STATES", "AMERICA"),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
_TYPES = ["ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD"]
_SHIPMODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
_INSTRUCTIONS = [
    "DELIVER IN PERSON", "COLLECT COD", "TAKE BACK RETURN", "NONE",
    "LEAVE AT DOOR", "SIGNATURE REQUIRED", "HOLD AT DEPOT",
]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_STATUSES = ["O", "F", "P"]
_RETURNFLAGS = ["N", "R", "A"]
_TAXCODES = [f"TAX-{chr(ord('A') + i)}" for i in range(12)]
_SHIPBANDS = ["LOCAL", "REGIONAL", "CONTINENTAL", "OVERSEAS", "EXPRESS"]


class TPCHGenerator:
    """Deterministic generator for the denormalised TPCH-like relation."""

    #: Attributes a CFD's error can be injected into (the RHS of some embedded FD).
    _CORRUPTIBLE = [
        "cnation", "cregion", "csegment", "pbrand", "ptype",
        "snation", "sregion", "shipinstruct", "returnflag", "taxcode", "shipband",
    ]

    def __init__(
        self,
        seed: int = 7,
        n_customers: int = 200,
        n_parts: int = 150,
        n_suppliers: int = 60,
        error_rate: float = 0.05,
    ):
        self.seed = seed
        self.n_customers = n_customers
        self.n_parts = n_parts
        self.n_suppliers = n_suppliers
        self.error_rate = error_rate
        self.schema = Schema(
            "TPCH",
            [
                "okey", "cname", "cnation", "cregion", "csegment",
                "pname", "pbrand", "ptype",
                "sname", "snation", "sregion",
                "shipmode", "shipinstruct", "linestatus", "returnflag",
                "opriority", "taxcode", "shipband",
                "quantity", "price", "discount", "odate",
            ],
            key="okey",
        )

    # -- deterministic clean mappings (these are the embedded FDs) ----------------------

    @staticmethod
    def _pick(options: list, key: str) -> object:
        acc = 0
        for ch in key:
            acc = (acc * 1313 + ord(ch)) & 0x7FFFFFFF
        return options[acc % len(options)]

    def _customer(self, index: int) -> dict:
        name = f"Customer#{index:05d}"
        nation, region = self._pick(_NATIONS, name)
        return {
            "cname": name,
            "cnation": nation,
            "cregion": region,
            "csegment": self._pick(_SEGMENTS, name + "seg"),
        }

    def _part(self, index: int) -> dict:
        name = f"Part#{index:05d}"
        brand = self._pick(_BRANDS, name)
        return {
            "pname": name,
            "pbrand": brand,
            "ptype": self._pick(_TYPES, str(brand)),
        }

    def _supplier(self, index: int) -> dict:
        name = f"Supplier#{index:04d}"
        nation, region = self._pick(_NATIONS, name + "sup")
        return {"sname": name, "snation": nation, "sregion": region}

    def _clean_row(self, tid: int, rng: random.Random) -> dict:
        customer = self._customer(rng.randrange(self.n_customers))
        part = self._part(rng.randrange(self.n_parts))
        supplier = self._supplier(rng.randrange(self.n_suppliers))
        shipmode = rng.choice(_SHIPMODES)
        linestatus = rng.choice(_STATUSES)
        row = {
            "okey": tid,
            **customer,
            **part,
            **supplier,
            "shipmode": shipmode,
            "shipinstruct": self._pick(_INSTRUCTIONS, shipmode),
            "linestatus": linestatus,
            "returnflag": self._pick(_RETURNFLAGS, linestatus),
            "opriority": rng.choice(_PRIORITIES),
            "taxcode": self._pick(_TAXCODES, customer["cnation"] + customer["csegment"]),
            "shipband": self._pick(_SHIPBANDS, supplier["snation"] + shipmode),
            "quantity": rng.randint(1, 50),
            "price": round(rng.uniform(900.0, 105000.0), 2),
            "discount": round(rng.uniform(0.0, 0.1), 2),
            "odate": f"{rng.randint(1992, 1998)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
        }
        return row

    def _inject_error(self, row: dict, rng: random.Random) -> None:
        attribute = rng.choice(self._CORRUPTIBLE)
        domains = {
            "cnation": [n for n, _ in _NATIONS], "cregion": sorted({r for _, r in _NATIONS}),
            "csegment": _SEGMENTS, "pbrand": _BRANDS, "ptype": _TYPES,
            "snation": [n for n, _ in _NATIONS], "sregion": sorted({r for _, r in _NATIONS}),
            "shipinstruct": _INSTRUCTIONS, "returnflag": _RETURNFLAGS,
            "taxcode": _TAXCODES, "shipband": _SHIPBANDS,
        }
        domain = domains[attribute]
        wrong = rng.choice(domain)
        if wrong == row[attribute]:
            wrong = domain[(domain.index(wrong) + 1) % len(domain)]
        row[attribute] = wrong

    # -- public generation API ------------------------------------------------------------

    def tuples(self, start_tid: int, count: int) -> list[Tuple]:
        """Generate ``count`` tuples with tids ``start_tid .. start_tid + count - 1``.

        Every tuple is a deterministic function of (seed, tid), so update
        streams can extend a relation without regenerating it.
        """
        out = []
        for tid in range(start_tid, start_tid + count):
            rng = random.Random(f"{self.seed}:{tid}")
            row = self._clean_row(tid, rng)
            if rng.random() < self.error_rate:
                self._inject_error(row, rng)
            out.append(Tuple(tid, row))
        return out

    def relation(self, n_tuples: int) -> Relation:
        """The base relation ``D`` with tids ``1 .. n_tuples``."""
        return Relation(self.schema, self.tuples(1, n_tuples))

    # -- embedded dependencies ------------------------------------------------------------------

    def fd_specs(self) -> list[FDSpec]:
        """The functional dependencies that hold on clean data by construction."""
        nations = [n for n, _ in _NATIONS]
        nation_region = [({"cnation": n}, r) for n, r in _NATIONS]
        snation_region = [({"snation": n}, r) for n, r in _NATIONS]
        shipmode_pairs = [
            ({"shipmode": m}, self._pick(_INSTRUCTIONS, m)) for m in _SHIPMODES
        ]
        status_pairs = [({"linestatus": s}, self._pick(_RETURNFLAGS, s)) for s in _STATUSES]
        return [
            FDSpec.build(["cname"], "cnation", {"cname": [f"Customer#{i:05d}" for i in range(20)]}),
            FDSpec.build(["cnation"], "cregion", {"cnation": nations}, nation_region),
            FDSpec.build(["cname"], "csegment", {"cname": [f"Customer#{i:05d}" for i in range(20)]}),
            FDSpec.build(["pname"], "pbrand", {"pname": [f"Part#{i:05d}" for i in range(20)]}),
            FDSpec.build(["pbrand"], "ptype", {"pbrand": _BRANDS}),
            FDSpec.build(["sname"], "snation", {"sname": [f"Supplier#{i:04d}" for i in range(20)]}),
            FDSpec.build(["snation"], "sregion", {"snation": nations}, snation_region),
            FDSpec.build(["shipmode"], "shipinstruct", {"shipmode": _SHIPMODES}, shipmode_pairs),
            FDSpec.build(["linestatus"], "returnflag", {"linestatus": _STATUSES}, status_pairs),
            FDSpec.build(
                ["cnation", "csegment"], "taxcode",
                {"cnation": nations, "csegment": _SEGMENTS},
            ),
            FDSpec.build(
                ["snation", "shipmode"], "shipband",
                {"snation": nations, "shipmode": _SHIPMODES},
            ),
            # FDs with redundant LHS attributes still hold on clean data; they are
            # included because multi-attribute LHSs with shared prefixes are what
            # the eqid-shipment optimizer of Section 5 exploits.
            FDSpec.build(
                ["cnation", "csegment", "shipmode"], "taxcode",
                {"cnation": nations, "csegment": _SEGMENTS, "shipmode": _SHIPMODES},
            ),
            FDSpec.build(
                ["snation", "shipmode", "linestatus"], "shipband",
                {"snation": nations, "shipmode": _SHIPMODES, "linestatus": _STATUSES},
            ),
            FDSpec.build(
                ["cnation", "csegment", "linestatus"], "taxcode",
                {"cnation": nations, "csegment": _SEGMENTS, "linestatus": _STATUSES},
            ),
            FDSpec.build(
                ["cname", "shipmode"], "csegment",
                {"cname": [f"Customer#{i:05d}" for i in range(20)], "shipmode": _SHIPMODES},
            ),
        ]

    # -- default partition schemes ------------------------------------------------------------------

    def vertical_partitioner(self, n_fragments: int = 10) -> VerticalPartitioner:
        """Spread the non-key attributes evenly over ``n_fragments`` sites."""
        return even_vertical_scheme(self.schema, n_fragments)

    def horizontal_partitioner(self, n_fragments: int = 10) -> HorizontalPartitioner:
        """Hash-partition rows over ``n_fragments`` sites by the order key."""
        return hash_horizontal_scheme(self.schema, n_fragments)
