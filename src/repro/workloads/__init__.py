"""Workloads: datasets, rules and update streams used by the evaluation.

* :mod:`repro.workloads.emp` — the paper's EMP running example (Figs. 1-3).
* :mod:`repro.workloads.tpch` — a deterministic synthetic generator for
  a denormalised TPCH-like wide table (the paper joins all TPCH tables
  into one relation); stands in for the 2M-10M tuple EC2 datasets.
* :mod:`repro.workloads.dblp` — a synthetic bibliography relation that
  plays the role of the paper's DBLP extract.
* :mod:`repro.workloads.rules` — CFD generation following the paper's
  methodology: design FDs first, then add constant patterns.
* :mod:`repro.workloads.updates` — batch update generation (the paper
  uses 80% insertions / 20% deletions).
"""

from repro.workloads.emp import EmpWorkload
from repro.workloads.rules import FDSpec, generate_cfds
from repro.workloads.tpch import TPCHGenerator
from repro.workloads.dblp import DBLPGenerator
from repro.workloads.updates import generate_updates

__all__ = [
    "EmpWorkload",
    "FDSpec",
    "generate_cfds",
    "TPCHGenerator",
    "DBLPGenerator",
    "generate_updates",
]
