"""CFD generation following the paper's methodology.

Section 7: "CFDs were designed manually.  We first designed functional
dependencies (FDs), and then produced CFDs by adding patterns (i.e.,
conditions) to the FDs."  Each workload generator publishes its embedded
FDs as :class:`FDSpec` objects (the dependencies that hold on clean data
by construction); :func:`generate_cfds` then derives an arbitrary number
of CFDs from them:

* plain FDs (all-wildcard pattern tuples),
* variable CFDs with a constant condition on one LHS attribute,
* constant CFDs binding both a LHS condition and the RHS value to a
  consistent pair observed in the clean mapping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.core.cfd import CFD


@dataclass(frozen=True)
class FDSpec:
    """One functional dependency embedded in a workload's clean data.

    Parameters
    ----------
    lhs / rhs:
        The embedded FD ``lhs -> rhs``.
    lhs_domains:
        For each LHS attribute, a sample of values appearing in the data
        (used to generate constant conditions).
    consistent_pairs:
        Samples of ``({lhs attr: value, ...}, rhs value)`` that hold on
        clean data; used to generate constant CFDs whose violations are
        genuine errors rather than artifacts of the rule.
    """

    lhs: tuple[str, ...]
    rhs: str
    lhs_domains: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    consistent_pairs: tuple[tuple[tuple[tuple[str, Any], ...], Any], ...] = ()

    @staticmethod
    def build(
        lhs: Sequence[str],
        rhs: str,
        lhs_domains: Mapping[str, Iterable[Any]] | None = None,
        consistent_pairs: Iterable[tuple[Mapping[str, Any], Any]] = (),
    ) -> "FDSpec":
        domains = tuple(
            (attr, tuple(values)) for attr, values in (lhs_domains or {}).items()
        )
        pairs = tuple(
            (tuple(sorted(cond.items())), rhs_value) for cond, rhs_value in consistent_pairs
        )
        return FDSpec(tuple(lhs), rhs, domains, pairs)

    def domain_of(self, attribute: str) -> tuple[Any, ...]:
        for attr, values in self.lhs_domains:
            if attr == attribute:
                return values
        return ()


def generate_cfds(
    specs: Sequence[FDSpec],
    count: int,
    seed: int = 0,
    constant_fraction: float = 0.2,
) -> list[CFD]:
    """Derive ``count`` CFDs from the workload's embedded FDs.

    The first pass over the specs emits the plain FDs; subsequent passes
    add constant conditions on LHS attributes (variable CFDs) and, for a
    ``constant_fraction`` of the rules, constant CFDs built from the
    spec's consistent pairs.  The output is deterministic for a given
    seed.
    """
    if count <= 0:
        return []
    if not specs:
        raise ValueError("generate_cfds needs at least one FDSpec")
    rng = random.Random(seed)
    cfds: list[CFD] = []
    seen: set[tuple] = set()
    spec_cycle = 0
    while len(cfds) < count:
        spec = specs[spec_cycle % len(specs)]
        spec_cycle += 1
        index = len(cfds)
        make_constant = (
            spec.consistent_pairs and rng.random() < constant_fraction and spec_cycle > len(specs)
        )
        pattern: dict[str, Any] = {}
        if make_constant:
            condition, rhs_value = rng.choice(list(spec.consistent_pairs))
            pattern.update(dict(condition))
            pattern[spec.rhs] = rhs_value
        elif spec_cycle > len(specs):
            # A variable CFD with a constant condition on one LHS attribute.
            candidates = [a for a in spec.lhs if spec.domain_of(a)]
            if candidates:
                attr = rng.choice(candidates)
                pattern[attr] = rng.choice(list(spec.domain_of(attr)))
        signature = (spec.lhs, spec.rhs, tuple(sorted(pattern.items())))
        if signature in seen and spec_cycle > 4 * max(count, len(specs)):
            # The domains are exhausted; accept a duplicate pattern rather
            # than looping forever (the CFD still gets a fresh name).
            pass
        elif signature in seen:
            continue
        seen.add(signature)
        name = f"cfd{index:03d}[{'_'.join(spec.lhs)}->{spec.rhs}]"
        cfds.append(CFD(spec.lhs, spec.rhs, pattern, name=name))
    return cfds
