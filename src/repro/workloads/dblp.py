"""A synthetic DBLP-like bibliography workload.

The paper's second dataset is a 320MB relation extracted from the DBLP
XML dump (100K-500K tuples).  This generator produces a structurally
similar publication relation: each row describes one paper with venue,
venue type, publisher, research area and editor attributes; the venue
determines its type, publisher and area on clean data, and a fraction of
rows carries injected errors.
"""

from __future__ import annotations

import random

from repro.core.relation import Relation
from repro.core.schema import Schema
from repro.core.tuples import Tuple
from repro.partition.horizontal import HorizontalPartitioner, hash_horizontal_scheme
from repro.partition.vertical import VerticalPartitioner, even_vertical_scheme
from repro.workloads.rules import FDSpec

_VENUES = [
    ("SIGMOD", "conference", "ACM", "databases"),
    ("VLDB", "conference", "VLDB Endowment", "databases"),
    ("ICDE", "conference", "IEEE", "databases"),
    ("PODS", "conference", "ACM", "theory"),
    ("EDBT", "conference", "OpenProceedings", "databases"),
    ("TODS", "journal", "ACM", "databases"),
    ("TKDE", "journal", "IEEE", "databases"),
    ("VLDBJ", "journal", "Springer", "databases"),
    ("JACM", "journal", "ACM", "theory"),
    ("KDD", "conference", "ACM", "data mining"),
    ("ICDM", "conference", "IEEE", "data mining"),
    ("WWW", "conference", "ACM", "web"),
    ("WSDM", "conference", "ACM", "web"),
    ("CIKM", "conference", "ACM", "information retrieval"),
    ("SIGIR", "conference", "ACM", "information retrieval"),
    ("NIPS", "conference", "Curran", "machine learning"),
    ("ICML", "conference", "PMLR", "machine learning"),
    ("JMLR", "journal", "Microtome", "machine learning"),
    ("SOSP", "conference", "ACM", "systems"),
    ("OSDI", "conference", "USENIX", "systems"),
]
_PUBLISHER_COUNTRY = {
    "ACM": "USA", "IEEE": "USA", "VLDB Endowment": "USA", "Springer": "Germany",
    "OpenProceedings": "Germany", "Curran": "USA", "PMLR": "UK",
    "Microtome": "USA", "USENIX": "USA",
}
_FIRST = ["Alice", "Bob", "Carol", "David", "Erika", "Frank", "Grace", "Hiro",
          "Ivan", "Jun", "Klara", "Luis", "Maria", "Nikos", "Olga", "Pedro"]
_LAST = ["Ahmed", "Brown", "Chen", "Dimitriou", "Evans", "Fischer", "Garcia",
         "Huang", "Ito", "Johnson", "Kumar", "Lee", "Martinez", "Novak", "Olsen", "Petrov"]


class DBLPGenerator:
    """Deterministic generator for the bibliography relation."""

    _CORRUPTIBLE = ["vtype", "publisher", "area", "country", "editor"]

    def __init__(self, seed: int = 11, error_rate: float = 0.05):
        self.seed = seed
        self.error_rate = error_rate
        self.schema = Schema(
            "DBLP",
            [
                "pid", "title", "author", "venue", "vtype", "publisher",
                "area", "country", "year", "editor", "pages",
            ],
            key="pid",
        )

    # -- deterministic clean mappings -------------------------------------------------------

    @staticmethod
    def _pick(options: list, key: str) -> object:
        acc = 0
        for ch in key:
            acc = (acc * 733 + ord(ch)) & 0x7FFFFFFF
        return options[acc % len(options)]

    def _editor_for(self, venue: str, year: int) -> str:
        first = self._pick(_FIRST, f"{venue}{year}e1")
        last = self._pick(_LAST, f"{venue}{year}e2")
        return f"{first} {last}"

    def _clean_row(self, tid: int, rng: random.Random) -> dict:
        venue, vtype, publisher, area = rng.choice(_VENUES)
        year = rng.randint(1995, 2011)
        author = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
        start = rng.randint(1, 600)
        return {
            "pid": tid,
            "title": f"On the {rng.choice(['Complexity', 'Design', 'Evaluation', 'Semantics', 'Optimization'])} "
                     f"of {rng.choice(['Queries', 'Dependencies', 'Views', 'Streams', 'Graphs'])} #{tid}",
            "author": author,
            "venue": venue,
            "vtype": vtype,
            "publisher": publisher,
            "area": area,
            "country": _PUBLISHER_COUNTRY[publisher],
            "year": year,
            "editor": self._editor_for(venue, year),
            "pages": f"{start}-{start + rng.randint(8, 24)}",
        }

    def _inject_error(self, row: dict, rng: random.Random) -> None:
        attribute = rng.choice(self._CORRUPTIBLE)
        domains = {
            "vtype": ["conference", "journal", "workshop"],
            "publisher": sorted(_PUBLISHER_COUNTRY),
            "area": sorted({v[3] for v in _VENUES}),
            "country": sorted(set(_PUBLISHER_COUNTRY.values())) + ["Unknown"],
            "editor": [f"{f} {l}" for f in _FIRST[:4] for l in _LAST[:4]],
        }
        domain = domains[attribute]
        wrong = rng.choice(domain)
        if wrong == row[attribute]:
            wrong = domain[(domain.index(wrong) + 1) % len(domain)]
        row[attribute] = wrong

    # -- public generation API ---------------------------------------------------------------------

    def tuples(self, start_tid: int, count: int) -> list[Tuple]:
        """Generate ``count`` tuples with consecutive tids starting at ``start_tid``."""
        out = []
        for tid in range(start_tid, start_tid + count):
            rng = random.Random(f"{self.seed}:{tid}")
            row = self._clean_row(tid, rng)
            if rng.random() < self.error_rate:
                self._inject_error(row, rng)
            out.append(Tuple(tid, row))
        return out

    def relation(self, n_tuples: int) -> Relation:
        """The base relation with tids ``1 .. n_tuples``."""
        return Relation(self.schema, self.tuples(1, n_tuples))

    # -- embedded dependencies ---------------------------------------------------------------------------

    def fd_specs(self) -> list[FDSpec]:
        """The functional dependencies that hold on clean data by construction."""
        venues = [v for v, _, _, _ in _VENUES]
        venue_type = [({"venue": v}, t) for v, t, _, _ in _VENUES]
        venue_pub = [({"venue": v}, p) for v, _, p, _ in _VENUES]
        venue_area = [({"venue": v}, a) for v, _, _, a in _VENUES]
        pub_country = [({"publisher": p}, c) for p, c in _PUBLISHER_COUNTRY.items()]
        return [
            FDSpec.build(["venue"], "vtype", {"venue": venues}, venue_type),
            FDSpec.build(["venue"], "publisher", {"venue": venues}, venue_pub),
            FDSpec.build(["venue"], "area", {"venue": venues}, venue_area),
            FDSpec.build(["publisher"], "country", {"publisher": sorted(_PUBLISHER_COUNTRY)}, pub_country),
            FDSpec.build(
                ["venue", "year"], "editor",
                {"venue": venues, "year": list(range(1995, 2012))},
            ),
            # FDs with redundant LHS attributes (supersets of embedded FDs) give the
            # Section 5 optimizer shared prefixes to exploit.
            FDSpec.build(
                ["venue", "year", "vtype"], "editor",
                {"venue": venues, "year": list(range(1995, 2012))},
            ),
            FDSpec.build(
                ["venue", "year", "publisher"], "editor",
                {"venue": venues, "year": list(range(1995, 2012))},
            ),
            FDSpec.build(
                ["venue", "area"], "publisher",
                {"venue": venues},
            ),
        ]

    # -- default partition schemes ------------------------------------------------------------------------

    def vertical_partitioner(self, n_fragments: int = 10) -> VerticalPartitioner:
        """Spread the non-key attributes evenly over ``n_fragments`` sites."""
        return even_vertical_scheme(self.schema, n_fragments)

    def horizontal_partitioner(self, n_fragments: int = 10) -> HorizontalPartitioner:
        """Hash-partition rows over ``n_fragments`` sites by the publication id."""
        return hash_horizontal_scheme(self.schema, n_fragments)
