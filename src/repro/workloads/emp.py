"""The EMP running example of the paper (Figs. 1-3, Examples 1-9).

The module reproduces relation ``D0`` (tuples t1-t5, plus t6 used in
Example 2), the CFDs ``phi1`` and ``phi2`` of Fig. 1, the vertical
partitioning into ``DV1, DV2, DV3`` and the horizontal partitioning into
``DH1, DH2, DH3``.  The paper-example tests and the ``employee_audit``
example are built on top of it.
"""

from __future__ import annotations

from repro.core.cfd import CFD
from repro.core.relation import Relation
from repro.core.schema import Schema
from repro.core.tuples import Tuple
from repro.partition.horizontal import HorizontalFragment, HorizontalPartitioner
from repro.partition.predicates import AttributeEquals
from repro.partition.vertical import VerticalFragment, VerticalPartitioner


class EmpWorkload:
    """The EMP schema, data, CFDs and partition schemes of the paper."""

    def __init__(self) -> None:
        self.schema = Schema(
            "EMP",
            [
                "id",
                "name",
                "sex",
                "grade",
                "street",
                "city",
                "zip",
                "CC",
                "AC",
                "phn",
                "salary",
                "hd",
            ],
            key="id",
        )

    # -- data (Fig. 2) -------------------------------------------------------------

    @staticmethod
    def _row(tid, name, sex, grade, street, city, zip_, cc, ac, phn, salary, hd):
        return Tuple(
            tid,
            {
                "id": tid,
                "name": name,
                "sex": sex,
                "grade": grade,
                "street": street,
                "city": city,
                "zip": zip_,
                "CC": cc,
                "AC": ac,
                "phn": phn,
                "salary": salary,
                "hd": hd,
            },
        )

    def tuples(self) -> dict[str, Tuple]:
        """The six tuples of Fig. 2, keyed ``t1`` .. ``t6``."""
        return {
            "t1": self._row(1, "Mike", "M", "A", "Mayfield", "NYC", "EH4 8LE", 44, 131, "8693784", "65k", "01/10/2005"),
            "t2": self._row(2, "Sam", "M", "A", "Preston", "EDI", "EH2 4HF", 44, 131, "8765432", "65k", "01/05/2009"),
            "t3": self._row(3, "Molina", "F", "B", "Mayfield", "EDI", "EH4 8LE", 44, 131, "3456789", "80k", "01/03/2010"),
            "t4": self._row(4, "Philip", "M", "B", "Mayfield", "EDI", "EH4 8LE", 44, 131, "2909209", "85k", "01/05/2010"),
            "t5": self._row(5, "Adam", "M", "C", "Crichton", "EDI", "EH4 8LE", 44, 131, "7478626", "120k", "01/05/1995"),
            "t6": self._row(6, "George", "M", "C", "Mayfield", "EDI", "EH4 8LE", 44, 131, "9595858", "120k", "01/07/1993"),
        }

    def relation(self, include_t6: bool = False) -> Relation:
        """``D0``: tuples t1-t5 (t6 is inserted by Example 2 when requested)."""
        rows = self.tuples()
        keys = ["t1", "t2", "t3", "t4", "t5"] + (["t6"] if include_t6 else [])
        return Relation(self.schema, [rows[k] for k in keys])

    # -- CFDs (Fig. 1) -----------------------------------------------------------------

    def phi1(self) -> CFD:
        """``phi1: ([CC = 44, zip] -> [street])`` — a variable CFD."""
        return CFD(["CC", "zip"], "street", {"CC": 44}, name="phi1")

    def phi2(self) -> CFD:
        """``phi2: ([CC = 44, AC = 131] -> [city = 'EDI'])`` — a constant CFD."""
        return CFD(["CC", "AC"], "city", {"CC": 44, "AC": 131, "city": "EDI"}, name="phi2")

    def cfds(self) -> list[CFD]:
        """``Sigma0 = {phi1, phi2}``."""
        return [self.phi1(), self.phi2()]

    # -- partition schemes (Fig. 2) ---------------------------------------------------------

    def vertical_partitioner(self) -> VerticalPartitioner:
        """``DV1(id, name, sex, grade)``, ``DV2(id, street, city, zip)``,
        ``DV3(id, CC, AC, phn, salary, hd)``."""
        return VerticalPartitioner(
            self.schema,
            [
                VerticalFragment("DV1", 0, ("id", "name", "sex", "grade")),
                VerticalFragment("DV2", 1, ("id", "street", "city", "zip")),
                VerticalFragment("DV3", 2, ("id", "CC", "AC", "phn", "salary", "hd")),
            ],
        )

    def horizontal_partitioner(self) -> HorizontalPartitioner:
        """``DH1 (grade = 'A')``, ``DH2 (grade = 'B')``, ``DH3 (grade = 'C')``."""
        return HorizontalPartitioner(
            self.schema,
            [
                HorizontalFragment("DH1", 0, AttributeEquals("grade", "A")),
                HorizontalFragment("DH2", 1, AttributeEquals("grade", "B")),
                HorizontalFragment("DH3", 2, AttributeEquals("grade", "C")),
            ],
        )
