"""Batch update generation.

Section 7: "Batch updates contain 80% insertions and 20% deletions,
since insertions happen more often than deletions in practice."
:func:`generate_updates` builds such a batch against an existing base
relation: insertions are fresh tuples produced by the workload generator
(continuing its tid sequence), deletions are sampled from the base
relation without replacement.
"""

from __future__ import annotations

import random
import warnings
from typing import Protocol

from repro.core.relation import Relation
from repro.core.tuples import Tuple
from repro.core.updates import Update, UpdateBatch


class TupleGenerator(Protocol):
    """The minimal generator interface the update stream needs."""

    def tuples(self, start_tid: int, count: int) -> list[Tuple]:  # pragma: no cover
        ...


def _zipf_weights(n: int, skew: float) -> list[float]:
    """Rank weights ``1 / (rank+1)^skew`` (Zipf-ish hot-key concentration)."""
    return [1.0 / (rank + 1) ** skew for rank in range(n)]


def generate_updates(
    base: Relation,
    generator: TupleGenerator,
    size: int,
    insert_fraction: float = 0.8,
    seed: int = 0,
    skew: float = 0.0,
    hot_attribute: str | None = None,
    rng: random.Random | None = None,
) -> UpdateBatch:
    """A batch of ``size`` updates against ``base``.

    ``insert_fraction`` of the batch are insertions of fresh tuples; the
    rest are deletions of existing tuples (at most ``len(base)`` of
    them — deletions sample the base without replacement, so demanding
    more deletions than the base holds clamps the deletion count and
    tops the batch up with extra insertions, with a :class:`UserWarning`
    reporting the requested vs actual split).  The interleaving is
    shuffled deterministically so that insertions and deletions are
    mixed as they would be in a real update stream.

    ``skew`` (default 0: uniform, the paper's workload) concentrates the
    batch on hot keys, Zipf-style: the distinct ``hot_attribute`` values
    of the base (default: the schema key) are ranked and weighted
    ``1/rank^skew``; deletions sample victims by their value's weight,
    and each insertion overwrites its fresh tuple's ``hot_attribute``
    with a weight-sampled existing value.  Hash-partitioned deployments
    then see realistic hot-shard traffic — the workload the elasticity
    and crossover benches stress rebalancing with.

    ``rng`` (overrides ``seed``) threads a caller-owned
    :class:`random.Random` through the sampling, so concurrent simulated
    clients each hold a private stream: two clients seeded differently
    produce deterministic, non-identical batches, and one client calling
    repeatedly with its own generator keeps advancing a single stream
    instead of replaying the seed.
    """
    if size < 0:
        raise ValueError("update batch size must be non-negative")
    if not 0.0 <= insert_fraction <= 1.0:
        raise ValueError("insert_fraction must lie in [0, 1]")
    if skew < 0.0:
        raise ValueError("skew must be non-negative")
    if rng is None:
        rng = random.Random(seed)
    n_inserts = round(size * insert_fraction)
    n_deletes_requested = size - n_inserts
    n_deletes = min(n_deletes_requested, len(base))
    if n_deletes < n_deletes_requested:
        warnings.warn(
            f"requested {n_deletes_requested} deletions but the base relation "
            f"holds only {len(base)} tuples; the batch will contain "
            f"{size - n_deletes} insertions and {n_deletes} deletions "
            f"(requested split: {n_inserts}/{n_deletes_requested})",
            UserWarning,
            stacklevel=2,
        )
    n_inserts = size - n_deletes

    max_tid = 0
    for t in base:
        if isinstance(t.tid, int) and t.tid > max_tid:
            max_tid = t.tid
    fresh = generator.tuples(max_tid + 1, n_inserts)
    existing = sorted(base, key=lambda t: str(t.tid))

    if skew > 0.0 and existing:
        attribute = hot_attribute or base.schema.key
        base.schema.validate_attributes([attribute])
        values = sorted({t[attribute] for t in existing}, key=str)
        weights = _zipf_weights(len(values), skew)
        weight_of = dict(zip(values, weights))
        # Hot inserts: land each fresh tuple on a weight-sampled existing
        # hot value, so new traffic concentrates on the same shards.
        fresh = [
            t.with_values(**{attribute: rng.choices(values, weights)[0]})
            for t in fresh
        ]
        # Hot deletes: weighted sampling without replacement
        # (Efraimidis-Spirakis keys), so victims cluster on hot values too.
        keyed = sorted(
            existing,
            key=lambda t: rng.random() ** (1.0 / weight_of[t[attribute]]),
            reverse=True,
        )
        victims = keyed[:n_deletes]
    else:
        victims = rng.sample(existing, n_deletes) if n_deletes else []

    inserts = [Update.insert(t) for t in fresh]
    deletes = [Update.delete(t) for t in victims]

    updates = inserts + deletes
    rng.shuffle(updates)
    return UpdateBatch(updates)
