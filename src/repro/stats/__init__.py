"""Live statistics for the cost-based adaptive planner.

:class:`StatsCatalog` aggregates relation statistics, rule structure
and per-strategy EWMA feedback; :class:`BatchProfile` summarises one
update batch.  Collected cheaply during ``setup()``/``apply()`` on both
row and columnar backends — see :mod:`repro.stats.collector`.
"""

from repro.stats.collector import (
    EWMA,
    SAMPLE_LIMIT,
    BatchProfile,
    RelationStats,
    RuleProfile,
    SiteLoad,
    SiteLoadTracker,
    StatsCatalog,
    StrategyFeedback,
    profile_of,
)

__all__ = [
    "EWMA",
    "SAMPLE_LIMIT",
    "BatchProfile",
    "RelationStats",
    "RuleProfile",
    "SiteLoad",
    "SiteLoadTracker",
    "StatsCatalog",
    "StrategyFeedback",
    "profile_of",
]
