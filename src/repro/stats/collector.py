"""Live statistics for the cost-based planner.

The adaptive planner needs three kinds of numbers to price a strategy
before running it:

* *data statistics* — cardinality, per-attribute distinct counts and
  average tuple width of the relation under detection
  (:class:`RelationStats`; collected once at ``setup()`` and kept
  current arithmetically as batches apply);
* *rule statistics* — how many CFDs are constant / locally checkable /
  general, and how wide their LHSs are (:class:`RuleProfile`; these
  drive the paper's Section 5/6 shipment formulas);
* *feedback* — EWMA-smoothed observed cost per unit of each strategy's
  complexity driver (:class:`StrategyFeedback`; ``O(|delta-D|)`` for the
  incremental detectors, ``O(|D (+) delta-D|)`` for the batch ones), fed
  back after every batch so estimates converge on measured behaviour.

Everything here is cheap: columnar relations read distinct counts
straight from their value dictionaries, row relations are sampled up to
:data:`SAMPLE_LIMIT` tuples, and per-batch maintenance is O(1) plus the
batch normalization the detectors perform anyway.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.updates import UpdateBatch
from repro.distributed.serialization import estimate_tuple_bytes

#: Row-backend relations are sampled up to this many tuples when
#: collecting distinct counts and average tuple width.
SAMPLE_LIMIT = 1000


class EWMA:
    """An exponentially weighted moving average (the calibration loop).

    ``alpha`` is the weight of the newest observation; the first
    observation seeds the average directly.
    """

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("EWMA alpha must lie in (0, 1]")
        self.alpha = alpha
        self._value = 0.0
        self._n = 0

    def observe(self, x: float) -> float:
        """Fold one observation in and return the smoothed value."""
        if self._n == 0:
            self._value = float(x)
        else:
            self._value += self.alpha * (float(x) - self._value)
        self._n += 1
        return self._value

    @property
    def value(self) -> float:
        return self._value

    @property
    def n_observations(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EWMA({self._value:.3f}, n={self._n})"


@dataclass(frozen=True)
class BatchProfile:
    """The shape of one update batch, as the planner prices it.

    ``normalized_size`` counts the updates that survive cancellation
    (line 1 of incVer/incHor) — the complexity driver ``|delta-D|`` of
    the incremental detectors.  ``net_growth`` is the cardinality change
    the batch applies to the database.
    """

    size: int
    n_inserts: int
    n_deletes: int
    normalized_size: int
    net_growth: int

    @classmethod
    def of(cls, batch: UpdateBatch) -> "BatchProfile":
        normalized = batch.normalized()
        n_ins = sum(1 for u in normalized if u.is_insert())
        n_del = len(normalized) - n_ins
        return cls(
            size=len(batch),
            n_inserts=n_ins,
            n_deletes=n_del,
            normalized_size=len(normalized),
            net_growth=n_ins - n_del,
        )


@dataclass(frozen=True)
class RelationStats:
    """Cardinality, distinct counts and average width of a relation."""

    cardinality: int
    n_attributes: int
    distinct_counts: dict[str, int]
    avg_tuple_bytes: float
    sampled: bool = False

    @property
    def avg_value_bytes(self) -> float:
        """Average wire size of a single attribute value."""
        return self.avg_tuple_bytes / max(1, self.n_attributes)

    @classmethod
    def collect(cls, relation: Any, sample_limit: int = SAMPLE_LIMIT) -> "RelationStats":
        """Collect statistics from a relation on either storage backend.

        Columnar relations read distinct counts from their value
        dictionaries (O(attributes)); row relations are sampled up to
        ``sample_limit`` tuples.  Average tuple width is sampled on both
        backends.
        """
        attrs = list(relation.schema.attribute_names)
        n = len(relation)
        from repro.columnar.store import column_store_of
        from repro.sqlstore.store import sql_store_of

        store = column_store_of(relation)
        sql_store = sql_store_of(relation)
        distinct: dict[str, int] = {}
        sampled = False
        if store is not None:
            for a in attrs:
                distinct[a] = len(store.dictionary(a))
        elif sql_store is not None:
            # Exact counts, pushed down as one aggregate query.
            distinct = sql_store.distinct_counts()
        else:
            seen: dict[str, set] = {a: set() for a in attrs}
            for i, t in enumerate(relation):
                if i >= sample_limit:
                    sampled = True
                    break
                for a in attrs:
                    try:
                        seen[a].add(t[a])
                    except TypeError:  # unhashable value: give up on the column
                        seen[a].add(id(t[a]))
            distinct = {a: len(s) for a, s in seen.items()}

        total_bytes = 0.0
        n_sampled = 0
        for i, t in enumerate(relation):
            if i >= sample_limit:
                sampled = True
                break
            total_bytes += estimate_tuple_bytes(t, attrs)
            n_sampled += 1
        avg = total_bytes / n_sampled if n_sampled else 0.0
        return cls(
            cardinality=n,
            n_attributes=len(attrs),
            distinct_counts=distinct,
            avg_tuple_bytes=avg,
            sampled=sampled,
        )

    def grown_by(self, net_growth: int) -> "RelationStats":
        """Cardinality maintenance after a batch (distinct counts kept)."""
        return RelationStats(
            cardinality=max(0, self.cardinality + net_growth),
            n_attributes=self.n_attributes,
            distinct_counts=self.distinct_counts,
            avg_tuple_bytes=self.avg_tuple_bytes,
            sampled=self.sampled,
        )


@dataclass(frozen=True)
class RuleProfile:
    """The planner-relevant shape of a rule set.

    For CFDs against a vertical partitioning, rules split into constant
    (single-tuple checks, partial-tuple shipments), locally checkable
    (no shipment) and general (eqid shipments through the HEV plan) —
    the three cases of Fig. 5.  Horizontally, constant CFDs are locally
    checkable and variable CFDs ship tuples or MD5 fingerprints
    (Fig. 8).  Matching dependencies count as general rules.

    ``n_groups`` is the number of fused same-LHS rule groups the
    rule-fusion compiler produces — the number of data sweeps a fused
    validation pays, which is what the local-work estimators scale
    with.  It equals ``n_rules`` when fusion is off (or for MD rule
    sets, which fuse nothing) and can be much smaller for tableau-style
    rule sets.
    """

    n_rules: int
    n_constant: int
    n_local: int
    n_general: int
    avg_lhs: float
    kind: str = "cfd"
    n_groups: int = 0

    @classmethod
    def of(
        cls,
        rules: Iterable[Any],
        vertical_partitioner: Any = None,
        fusion: bool = True,
    ) -> "RuleProfile":
        rules = list(rules)
        from repro.similarity.md import MatchingDependency

        if rules and all(isinstance(r, MatchingDependency) for r in rules):
            lhs_sizes = [len(r.lhs) for r in rules]
            return cls(
                n_rules=len(rules),
                n_constant=0,
                n_local=0,
                n_general=len(rules),
                avg_lhs=sum(lhs_sizes) / len(lhs_sizes),
                kind="md",
                n_groups=len(rules),
            )
        n_constant = n_local = n_general = 0
        lhs_sizes: list[int] = []
        for cfd in rules:
            if cfd.is_constant():
                n_constant += 1
                continue
            if (
                vertical_partitioner is not None
                and vertical_partitioner.is_local(cfd.attributes) is not None
            ):
                n_local += 1
            else:
                n_general += 1
                lhs_sizes.append(len(cfd.lhs))
        if fusion:
            from repro.rulefuse import n_fused_groups

            n_groups = n_fused_groups(rules)
        else:
            n_groups = len(rules)
        return cls(
            n_rules=len(rules),
            n_constant=n_constant,
            n_local=n_local,
            n_general=n_general,
            avg_lhs=sum(lhs_sizes) / len(lhs_sizes) if lhs_sizes else 1.0,
            kind="cfd",
            n_groups=n_groups,
        )


class StrategyFeedback:
    """Observed per-driver cost of one strategy, EWMA-smoothed.

    The *driver* is the estimator-declared unit the strategy's
    complexity scales with: normalized updates for the incremental
    detectors, final database tuples for the batch ones.  Observing
    ``(driver, actual cost, seconds)`` after each batch keeps the
    smoothed per-unit rates, which the planner multiplies back by the
    next batch's driver — the calibration loop.
    """

    def __init__(self, alpha: float = 0.3):
        self.bytes_per_unit = EWMA(alpha)
        self.messages_per_unit = EWMA(alpha)
        self.eqids_per_unit = EWMA(alpha)
        self.seconds_per_unit = EWMA(alpha)
        self._lock = threading.Lock()

    @property
    def n_observations(self) -> int:
        return self.bytes_per_unit.n_observations

    def observe(self, driver: float, cost: Any, seconds: float = 0.0) -> None:
        """Fold one measured batch in.  ``cost`` is a CostVector-like.

        Atomic across the four EWMAs: concurrent sessions feeding the
        same feedback never interleave a half-recorded observation
        (EWMA.observe is itself a read-modify-write).
        """
        d = max(1.0, float(driver))
        with self._lock:
            self.bytes_per_unit.observe(cost.bytes / d)
            self.messages_per_unit.observe(cost.messages / d)
            self.eqids_per_unit.observe(cost.eqids / d)
            self.seconds_per_unit.observe(seconds / d)

    def as_dict(self) -> dict[str, Any]:
        """A consistent snapshot of the four smoothed rates."""
        with self._lock:
            return {
                "n_observations": self.n_observations,
                "bytes_per_unit": self.bytes_per_unit.value,
                "messages_per_unit": self.messages_per_unit.value,
                "eqids_per_unit": self.eqids_per_unit.value,
                "seconds_per_unit": self.seconds_per_unit.value,
            }


@dataclass(frozen=True)
class SiteLoad:
    """One site's load snapshot: stored tuples, update hits, local work."""

    site: int
    tuples: int = 0
    update_hits: int = 0
    busy_seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "tuples": self.tuples,
            "update_hits": self.update_hits,
            "busy_seconds": self.busy_seconds,
        }


class SiteLoadTracker:
    """Per-bucket (and per-site) update-hit accounting for rebalancing.

    The tracker hashes every update's routing value into a *fine* bucket
    space — a multiple of the deployment's current bucket count, so the
    observed loads can drive
    :meth:`~repro.partition.horizontal.HorizontalPartitioner.rebalance_plan`
    directly.  Tracking is O(1) per update and entirely local.
    """

    def __init__(self, attribute: str, n_buckets: int):
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        self.attribute = attribute
        self.n_buckets = n_buckets
        self._hits: dict[int, int] = {}
        self.total_hits = 0
        self._lock = threading.Lock()

    def _note_locked(self, t: Mapping[str, Any]) -> int:
        from repro.partition.predicates import stable_hash

        bucket = stable_hash(t[self.attribute]) % self.n_buckets
        self._hits[bucket] = self._hits.get(bucket, 0) + 1
        self.total_hits += 1
        return bucket

    def note_update(self, t: Mapping[str, Any]) -> int:
        """Count one update against its fine bucket; returns the bucket.

        The counter increment is locked: concurrent sessions (service
        tenants, parallel streams) never lose a hit to a torn
        read-modify-write.
        """
        with self._lock:
            return self._note_locked(t)

    def note_batch(self, batch: UpdateBatch) -> None:
        """Count a whole batch under one lock acquisition."""
        with self._lock:
            for update in batch:
                self._note_locked(update.tuple)

    @property
    def bucket_loads(self) -> dict[int, int]:
        """Update hits per fine bucket (only touched buckets appear)."""
        with self._lock:
            return dict(self._hits)

    def site_hits(self, bucket_owner: Mapping[int, int]) -> dict[int, int]:
        """Aggregate bucket hits per owning site (``bucket -> site`` map)."""
        per_site: dict[int, int] = {}
        for bucket, hits in self.bucket_loads.items():
            site = bucket_owner.get(bucket)
            if site is not None:
                per_site[site] = per_site.get(site, 0) + hits
        return per_site

    def hottest_share(self, bucket_owner: Mapping[int, int]) -> float:
        """The hottest site's share of all observed update hits (0 if none)."""
        per_site = self.site_hits(bucket_owner)
        total = self.total_hits
        if not per_site or not total:
            return 0.0
        return max(per_site.values()) / total


class StatsCatalog:
    """Everything the planner knows about one detection session.

    Built at ``setup()`` and maintained on every ``apply()``; the
    catalog is local state — consulting it never ships a byte.
    """

    def __init__(
        self,
        relation: RelationStats,
        rules: RuleProfile,
        partitioning: str,
        n_sites: int = 1,
        n_violations: int = 0,
        alpha: float = 0.3,
    ):
        self.relation = relation
        self.rules = rules
        self.partitioning = partitioning
        self.n_sites = n_sites
        self.n_violations = n_violations
        self.site_loads: dict[int, SiteLoad] = {}
        self._alpha = alpha
        self._feedback: dict[str, StrategyFeedback] = {}
        self._lock = threading.Lock()

    @classmethod
    def collect(
        cls,
        relation: Any,
        rules: Iterable[Any],
        partitioning: str,
        n_sites: int = 1,
        vertical_partitioner: Any = None,
        n_violations: int = 0,
        alpha: float = 0.3,
        fusion: bool = True,
    ) -> "StatsCatalog":
        return cls(
            relation=RelationStats.collect(relation),
            rules=RuleProfile.of(rules, vertical_partitioner, fusion=fusion),
            partitioning=partitioning,
            n_sites=n_sites,
            n_violations=n_violations,
            alpha=alpha,
        )

    def feedback_for(self, strategy: str) -> StrategyFeedback:
        with self._lock:
            if strategy not in self._feedback:
                self._feedback[strategy] = StrategyFeedback(self._alpha)
            return self._feedback[strategy]

    def feedback_snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-strategy smoothed rates (for metrics export and ``explain``)."""
        with self._lock:
            feedback = dict(self._feedback)
        return {name: fb.as_dict() for name, fb in sorted(feedback.items())}

    def observe(
        self, strategy: str, driver: float, cost: Any, seconds: float = 0.0
    ) -> None:
        """Feed one measured batch back into the strategy's EWMAs."""
        self.feedback_for(strategy).observe(driver, cost, seconds)

    def note_batch(self, profile: BatchProfile, n_violations: int | None = None) -> None:
        """Cardinality (and violation-set) maintenance after a batch.

        Locked: two sessions folding batches into a shared catalog must
        not lose a cardinality adjustment to a read-modify-write race.
        """
        with self._lock:
            self.relation = self.relation.grown_by(profile.net_growth)
            if n_violations is not None:
                self.n_violations = n_violations

    def update_site_loads(self, loads: Iterable[SiteLoad]) -> None:
        """Replace the per-site load snapshot (sessions push this per batch)."""
        snapshot = {load.site: load for load in loads}
        with self._lock:
            self.site_loads = snapshot

    def hottest_site_share(self) -> float:
        """The hottest site's share of all recorded update hits (0 if none)."""
        with self._lock:
            loads = list(self.site_loads.values())
        total = sum(load.update_hits for load in loads)
        if not total:
            return 0.0
        return max(load.update_hits for load in loads) / total

    def final_cardinality(self, profile: BatchProfile) -> int:
        """``|D (+) delta-D|``: the database size after the batch."""
        return max(0, self.relation.cardinality + profile.net_growth)

    def as_dict(self) -> dict[str, Any]:
        """A plain-dict snapshot (for reports and diagnostics)."""
        site_loads = self.site_loads
        return {
            "cardinality": self.relation.cardinality,
            "n_attributes": self.relation.n_attributes,
            "avg_tuple_bytes": self.relation.avg_tuple_bytes,
            "partitioning": self.partitioning,
            "n_sites": self.n_sites,
            "n_violations": self.n_violations,
            "rules": {
                "n_rules": self.rules.n_rules,
                "n_constant": self.rules.n_constant,
                "n_local": self.rules.n_local,
                "n_general": self.rules.n_general,
                "avg_lhs": self.rules.avg_lhs,
                "kind": self.rules.kind,
                "n_groups": self.rules.n_groups,
            },
            "site_loads": [
                site_loads[site].as_dict() for site in sorted(site_loads)
            ],
        }


def profile_of(batch: UpdateBatch | Mapping[str, int]) -> BatchProfile:
    """Coerce an update batch (or a ready profile mapping) to a profile."""
    if isinstance(batch, UpdateBatch):
        return BatchProfile.of(batch)
    return BatchProfile(**dict(batch))
