"""Per-strategy cost estimators, from the paper's complexity analysis.

Every estimator maps ``(StatsCatalog, BatchProfile)`` to an
:class:`Estimate`: an analytic :class:`~repro.planner.cost.CostVector`
prior plus the *driver* — the number of units the strategy's cost
scales with, which the EWMA feedback loop later calibrates per-unit
rates against:

* incremental detection (incVer / optVer / incHor / incMD) costs
  ``O(|delta-D| + |delta-V|)`` — driver: normalized batch size;
* the improved batch baselines (ibatVer / ibatHor) rebuild ``V`` by
  incremental insertion from empty — driver: ``|D (+) delta-D|``, with
  the *same* per-unit shipment prior as the incremental side (they run
  the same machinery), which is exactly why the curves cross where they
  do in Exp-10 / Fig. 11;
* plain batch recomputation (batVer / batHor) re-ships fragments —
  driver: ``|D (+) delta-D|`` at whole-tuple width;
* the single-site strategies ship nothing; their local work separates
  incremental from batch recomputation.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.distributed.serialization import EQID_BYTES, MD5_BYTES, TID_BYTES
from repro.planner.cost import CostVector
from repro.stats.collector import BatchProfile, StatsCatalog

from dataclasses import dataclass


@dataclass(frozen=True)
class Estimate:
    """An analytic cost prior plus its complexity driver."""

    strategy: str
    cost: CostVector
    driver: float


def _inc_bytes_per_update(stats: StatsCatalog) -> float:
    """Shipment prior for processing one update incrementally.

    Vertical (Fig. 5): every general variable CFD ships at most
    ``|X| + 1`` eqids per update; constant CFDs ship a matching partial
    tuple to the coordinator.  Horizontal (Fig. 8): every variable CFD
    ships a tid + MD5 fingerprint to the sites sharing its groups;
    constant CFDs are locally checkable.  Single-site: nothing ships.
    """
    rules, rel = stats.rules, stats.relation
    if stats.partitioning == "vertical":
        per = rules.n_general * (rules.avg_lhs + 1.0) * EQID_BYTES
        per += rules.n_constant * (TID_BYTES + rel.avg_value_bytes)
        return per
    if stats.partitioning == "horizontal":
        return rules.n_general * (TID_BYTES + MD5_BYTES)
    return 0.0


def _block_factor(stats: StatsCatalog) -> float:
    """Average comparison-group size: tuples per distinct LHS value."""
    rel = stats.relation
    max_distinct = max(rel.distinct_counts.values(), default=1)
    return rel.cardinality / max(1, max_distinct)


def _n_scans(stats: StatsCatalog) -> int:
    """How many data sweeps validation pays: fused groups, else rules.

    With rule fusion the local work of a check scales with the number
    of fused same-LHS groups, not the number of rules (a tableau of k
    pattern rows costs one sweep).  Shipment priors stay rule-based —
    fusion never changes what ships.  ``n_groups`` is 0 on profiles
    built before fusion existed, falling back to ``n_rules``.
    """
    return stats.rules.n_groups or stats.rules.n_rules


def estimate_incremental(
    stats: StatsCatalog, profile: BatchProfile, strategy: str = "incremental"
) -> Estimate:
    """``O(|delta-D| + |delta-V|)`` work and shipment (Prop. 6 / Prop. 8)."""
    driver = float(profile.normalized_size)
    per_update = _inc_bytes_per_update(stats)
    # Constant work per update per fused rule group; single-site
    # incremental (incMD) additionally compares against its blocking
    # candidates.
    local = driver * _n_scans(stats)
    eqids = 0.0
    if stats.partitioning == "vertical":
        eqids = driver * stats.rules.n_general * (stats.rules.avg_lhs + 1.0)
    if stats.partitioning == "single":
        local = driver * _n_scans(stats) * _block_factor(stats)
    return Estimate(
        strategy,
        CostVector(
            bytes=driver * per_update,
            messages=driver * (stats.rules.n_general + stats.rules.n_constant),
            eqids=eqids,
            local_work=local,
        ),
        driver,
    )


def estimate_improved_batch(
    stats: StatsCatalog, profile: BatchProfile, strategy: str = "improved-batch"
) -> Estimate:
    """``O(|D| + |delta-D|)``: incremental insertion from empty (Exp-10).

    Shares the incremental per-insert shipment prior — the rebuild runs
    the same indices over every tuple of the final database.
    """
    driver = float(stats.final_cardinality(profile))
    per_update = _inc_bytes_per_update(stats)
    eqids = 0.0
    if stats.partitioning == "vertical":
        eqids = driver * stats.rules.n_general * (stats.rules.avg_lhs + 1.0)
    return Estimate(
        strategy,
        CostVector(
            bytes=driver * per_update,
            messages=driver * (stats.rules.n_general + stats.rules.n_constant),
            eqids=eqids,
            local_work=driver * _n_scans(stats),
        ),
        driver,
    )


def estimate_batch(
    stats: StatsCatalog, profile: BatchProfile, strategy: str = "batch"
) -> Estimate:
    """Full recomputation: re-ship and re-scan fragments (ICDE 2010 baseline)."""
    driver = float(stats.final_cardinality(profile))
    local = driver * _n_scans(stats)
    if stats.partitioning == "single":
        # Centralized / MD batch: no shipment, pairwise work within groups.
        return Estimate(
            strategy,
            CostVector(local_work=local * _block_factor(stats)),
            driver,
        )
    return Estimate(
        strategy,
        CostVector(
            bytes=driver * stats.relation.avg_tuple_bytes,
            messages=float(max(1, stats.n_sites - 1)) * stats.rules.n_rules,
            local_work=local,
        ),
        driver,
    )


#: Estimators addressable by the registry's (mode) coordinate; the
#: adaptive planner falls back here when a strategy has no
#: ``cost_estimate`` hook of its own.
ESTIMATORS: Dict[str, Callable[[StatsCatalog, BatchProfile, str], Estimate]] = {
    "incremental": estimate_incremental,
    "optimized": estimate_incremental,
    "improved-batch": estimate_improved_batch,
    "batch": estimate_batch,
}


def estimate_for_mode(
    mode: str, stats: StatsCatalog, profile: BatchProfile, strategy: str | None = None
) -> Estimate:
    """Estimate by generic mode name (``"incremental"``, ``"batch"``, ...)."""
    try:
        estimator = ESTIMATORS[mode]
    except KeyError:
        raise KeyError(
            f"no cost estimator for mode {mode!r}; known: {sorted(ESTIMATORS)}"
        ) from None
    return estimator(stats, profile, strategy or mode)
