"""Rebalancing policy: price "migrate now" against "keep paying skew".

A :class:`RebalancePolicy` turns observed per-site load skew into a
migration decision the same way the adaptive planner chooses strategies:
both options become :class:`~repro.planner.cost.CostVector`s and the
cheaper one wins.

* *Migrate now* costs the bytes of relocating the excess share of the
  database (the tuples the hottest site holds beyond its fair share) —
  a one-off shipment charged to the session ledger.
* *Keep paying skew* costs the extra local work the hottest site absorbs
  beyond its fair share on every future batch, amortized over the
  policy's ``horizon_batches``.  Local work is priced into bytes via
  ``local_work_bytes`` so the two vectors collapse onto the planner's
  shipment scalar.

``strategy("auto")`` sessions evaluate the policy after every batch and
trigger :meth:`~repro.engine.session.DetectionSession.rebalance`
themselves when it says migrate; fixed-strategy sessions may do the same
by configuring a policy on the builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.planner.cost import CostVector


@dataclass(frozen=True)
class RebalanceDecision:
    """The priced outcome of one policy evaluation."""

    rebalance: bool
    hottest_share: float
    fair_share: float
    migrate_cost: CostVector
    skew_cost: CostVector
    reason: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "rebalance": self.rebalance,
            "hottest_share": self.hottest_share,
            "fair_share": self.fair_share,
            "migrate_cost": self.migrate_cost.as_dict(),
            "skew_cost": self.skew_cost.as_dict(),
            "reason": self.reason,
        }


class RebalancePolicy:
    """Decides when observed skew justifies a live re-partitioning.

    Parameters
    ----------
    threshold:
        Trigger factor over the fair share: the policy never fires while
        the hottest site's update-hit share is below
        ``threshold * (1 / n_sites)``.
    horizon_batches:
        How many future batches the skew penalty is amortized over —
        larger horizons make migration pay off sooner.
    min_hits:
        Minimum observed update hits before the loads are trusted.
    local_work_bytes:
        Exchange rate pricing one unit of skewed local work (one update
        processed at the hot site beyond its fair share) in shipment
        bytes, so both options collapse onto one scalar.
    granularity:
        Fine buckets per site used when the session builds its
        :class:`~repro.stats.collector.SiteLoadTracker` and when the
        rebalance plan refines the hash scheme.
    """

    def __init__(
        self,
        threshold: float = 1.5,
        horizon_batches: int = 20,
        min_hits: int = 32,
        local_work_bytes: float = 64.0,
        granularity: int = 8,
    ):
        if threshold < 1.0:
            raise ValueError("threshold must be >= 1.0 (1.0 fires on any skew)")
        if horizon_batches <= 0:
            raise ValueError("horizon_batches must be positive")
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.threshold = threshold
        self.horizon_batches = horizon_batches
        self.min_hits = min_hits
        self.local_work_bytes = local_work_bytes
        self.granularity = granularity

    def evaluate(
        self,
        *,
        n_sites: int,
        hottest_share: float,
        total_hits: int,
        hits_per_batch: float,
        cardinality: int,
        avg_tuple_bytes: float,
    ) -> RebalanceDecision:
        """Price both options for the observed skew and pick one."""
        fair = 1.0 / max(1, n_sites)
        excess = max(0.0, hottest_share - fair)
        migrate = CostVector(bytes=excess * cardinality * avg_tuple_bytes)
        skew = CostVector(
            local_work=self.horizon_batches * hits_per_batch * excess
        )
        if n_sites < 2:
            return RebalanceDecision(
                False, hottest_share, fair, migrate, skew, "single site"
            )
        if total_hits < self.min_hits:
            return RebalanceDecision(
                False,
                hottest_share,
                fair,
                migrate,
                skew,
                f"only {total_hits} update hit(s) observed (min {self.min_hits})",
            )
        if hottest_share < self.threshold * fair:
            return RebalanceDecision(
                False,
                hottest_share,
                fair,
                migrate,
                skew,
                f"hottest share {hottest_share:.2f} below "
                f"{self.threshold:.2f}x fair share {fair:.2f}",
            )
        migrate_scalar = migrate.bytes
        skew_scalar = skew.local_work * self.local_work_bytes
        if skew_scalar <= migrate_scalar:
            return RebalanceDecision(
                False,
                hottest_share,
                fair,
                migrate,
                skew,
                f"skew cost {skew_scalar:.0f}B over {self.horizon_batches} "
                f"batch(es) does not repay migrating {migrate_scalar:.0f}B",
            )
        return RebalanceDecision(
            True,
            hottest_share,
            fair,
            migrate,
            skew,
            f"hottest site holds {hottest_share:.0%} of the load "
            f"(fair {fair:.0%}); migrating {migrate_scalar:.0f}B saves "
            f"~{skew_scalar - migrate_scalar:.0f}B over the horizon",
        )
