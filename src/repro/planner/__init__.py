"""The cost-based planner: unified cost vectors and adaptive strategy choice.

* :class:`CostVector` — bytes / messages / eqids / local work, one type
  for estimates and measured actuals (``NetworkStats.cost_vector()``);
* :mod:`repro.planner.estimators` — per-strategy analytic cost models
  derived from the paper's complexity analysis;
* :class:`AdaptivePlanner` / :class:`PlanDecision` — per-batch choice
  between the incremental and batch sides, calibrated by EWMA feedback;
* :func:`hev_plan_cost` — the cost core shared with the ``optVer`` HEV
  placement search in :mod:`repro.indexes.planner`.
"""

from repro.planner.adaptive import AdaptivePlanner, PlanDecision
from repro.planner.cost import MESSAGE_OVERHEAD_BYTES, CostVector, hev_plan_cost
from repro.planner.rebalance import RebalanceDecision, RebalancePolicy
from repro.planner.estimators import (
    ESTIMATORS,
    Estimate,
    estimate_batch,
    estimate_for_mode,
    estimate_improved_batch,
    estimate_incremental,
)

__all__ = [
    "AdaptivePlanner",
    "CostVector",
    "ESTIMATORS",
    "Estimate",
    "MESSAGE_OVERHEAD_BYTES",
    "PlanDecision",
    "RebalanceDecision",
    "RebalancePolicy",
    "estimate_batch",
    "estimate_for_mode",
    "estimate_improved_batch",
    "estimate_incremental",
    "hev_plan_cost",
]
