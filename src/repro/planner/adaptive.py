"""The adaptive planner: estimate every candidate, pick the cheaper side.

:class:`AdaptivePlanner` prices each candidate strategy for the next
batch (analytic priors from :mod:`repro.planner.estimators`, calibrated
by the :class:`~repro.stats.collector.StatsCatalog`'s EWMA feedback once
observations exist), picks the minimum, and records a
:class:`PlanDecision` — chosen strategy, estimated vs actual
:class:`~repro.planner.cost.CostVector` and the estimation error — per
batch.  The decision metric is shipped bytes (the paper's headline cost)
with local work as the tiebreak, so single-site candidates, which never
ship, are still ordered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.planner.cost import MESSAGE_OVERHEAD_BYTES, CostVector
from repro.planner.estimators import Estimate
from repro.stats.collector import BatchProfile, StatsCatalog


@dataclass
class PlanDecision:
    """One per-batch planning record (the session's plan trace entry)."""

    batch_index: int
    chosen: str
    estimates: dict[str, CostVector]
    estimated: CostVector
    actual: CostVector | None = None
    seconds: float = 0.0
    error: float | None = None
    switched: bool = False
    backend: str | None = None
    #: Rule-set shape the estimates were priced against: how many rules
    #: the session checks and how many fused same-LHS groups they
    #: compile to (equal when fusion is off or no LHS lists repeat).
    rule_groups: dict[str, int] | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "batch_index": self.batch_index,
            "chosen": self.chosen,
            "switched": self.switched,
            "backend": self.backend,
            "rule_groups": self.rule_groups,
            "estimates": {name: cv.as_dict() for name, cv in self.estimates.items()},
            "estimated": self.estimated.as_dict(),
            "actual": self.actual.as_dict() if self.actual is not None else None,
            "seconds": self.seconds,
            "error": self.error,
        }


@dataclass
class _RankKey:
    """Shipment bytes first, local work second — computed once per candidate."""

    shipment: float
    local_work: float


class AdaptivePlanner:
    """Chooses a strategy per batch and learns from the outcome."""

    def __init__(
        self,
        catalog: StatsCatalog,
        candidates: Mapping[str, Callable[[StatsCatalog, BatchProfile], Estimate]],
        message_overhead: float = MESSAGE_OVERHEAD_BYTES,
    ):
        """``candidates`` maps strategy names to their ``cost_estimate``
        hooks (``hook(stats, profile) -> Estimate``), in preference
        order — earlier candidates win exact ties."""
        if not candidates:
            raise ValueError("the adaptive planner needs at least one candidate")
        self.catalog = catalog
        self._candidates = dict(candidates)
        self._order = list(candidates)
        self._message_overhead = message_overhead
        #: Local-work rate of the active storage backend, applied to
        #: every candidate's estimate.  Monotonic scaling — it never
        #: changes the ranking among candidates on the same backend,
        #: only the absolute local-work numbers in the plan trace.
        self.local_work_rate: float = 1.0
        self.decisions: list[PlanDecision] = []

    @property
    def candidates(self) -> list[str]:
        return list(self._order)

    # -- estimation -------------------------------------------------------------------

    def estimate(self, name: str, profile: BatchProfile) -> Estimate:
        """The candidate's estimate, EWMA-calibrated once feedback exists."""
        est = self._candidates[name](self.catalog, profile)
        feedback = self.catalog.feedback_for(name)
        if feedback.n_observations == 0:
            return Estimate(
                est.strategy, est.cost.with_local_work_rate(self.local_work_rate), est.driver
            )
        d = est.driver
        calibrated = CostVector(
            bytes=feedback.bytes_per_unit.value * d,
            messages=feedback.messages_per_unit.value * d,
            eqids=feedback.eqids_per_unit.value * d,
            local_work=est.cost.local_work * self.local_work_rate,
        )
        return Estimate(est.strategy, calibrated, d)

    # -- choice ------------------------------------------------------------------------

    def choose(self, profile: BatchProfile) -> tuple[str, dict[str, Estimate]]:
        """Estimate every candidate and return (winner, all estimates).

        Ranking: estimated shipment bytes, then estimated local work,
        then candidate registration order — fully deterministic.
        """
        estimates = {name: self.estimate(name, profile) for name in self._order}
        best_name = self._order[0]
        best_key: _RankKey | None = None
        for name in self._order:
            cost = estimates[name].cost
            key = _RankKey(
                shipment=cost.shipment_scalar(self._message_overhead),
                local_work=cost.local_work,
            )
            if best_key is None or (key.shipment, key.local_work) < (
                best_key.shipment,
                best_key.local_work,
            ):
                best_key = key
                best_name = name
        return best_name, estimates

    # -- feedback ------------------------------------------------------------------------

    def record(
        self,
        batch_index: int,
        chosen: str,
        estimates: Mapping[str, Estimate],
        actual: CostVector,
        seconds: float,
        switched: bool = False,
        backend: str | None = None,
    ) -> PlanDecision:
        """Log the outcome of a batch and feed the EWMA calibration."""
        est = estimates[chosen]
        self.catalog.observe(chosen, est.driver, actual, seconds)
        rules = self.catalog.rules
        decision = PlanDecision(
            batch_index=batch_index,
            chosen=chosen,
            estimates={name: e.cost for name, e in estimates.items()},
            estimated=est.cost,
            actual=actual,
            seconds=seconds,
            error=est.cost.relative_error(actual),
            switched=switched,
            backend=backend,
            rule_groups={
                "n_rules": rules.n_rules,
                "n_groups": rules.n_groups or rules.n_rules,
            },
        )
        self.decisions.append(decision)
        return decision
