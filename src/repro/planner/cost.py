"""Unified cost vectors: estimates and actuals are the same type.

A :class:`CostVector` carries the four cost dimensions the paper's
Section 5 analysis reasons about — shipped bytes, messages, eqids and
local work — whether the numbers are *estimated* by a strategy's cost
model or *measured* off a :class:`~repro.distributed.network.Network`
ledger (``NetworkStats.cost_vector()`` / :func:`CostVector.from_stats`).
Using one type for both sides is what lets the adaptive planner compute
an estimation error per batch and feed it back into its EWMAs.

The module is also the cost core shared with the HEV placement search:
:func:`hev_plan_cost` prices a candidate HEV plan (eqid shipments per
unit update), which ``optVer`` in :mod:`repro.indexes.planner` minimises
over candidate node pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.distributed.serialization import EQID_BYTES

#: Fixed per-message overhead, in bytes, folded into the scalar cost.
#: The simulated network charges payload bytes only, so the default
#: keeps estimates and actuals on the same scale.
MESSAGE_OVERHEAD_BYTES = 0.0

#: Relative cost of one unit of local work per storage backend.  The
#: row backend is the baseline; columnar kernels batch whole columns
#: and SQL backends evaluate checks set-at-a-time inside the engine,
#: so a unit of the paper's per-tuple work costs less there.  These
#: priors seed the planner's backend choice until timing probes
#: (per (strategy, backend)) replace them with measurements.
LOCAL_WORK_RATES: dict[str, float] = {
    "rows": 1.0,
    "columnar": 0.35,
    "sql": 0.55,
    "duckdb": 0.45,
}


def local_work_rate(backend: str | None) -> float:
    """The local-work rate for ``backend`` (1.0 for unknown backends)."""
    if backend is None:
        return 1.0
    return LOCAL_WORK_RATES.get(backend, 1.0)


@dataclass(frozen=True)
class CostVector:
    """One strategy's cost over one batch (estimated or measured).

    ``bytes``/``messages``/``eqids`` mirror the network ledger;
    ``local_work`` counts per-tuple operations (index probes, pattern
    checks) that never cross the wire but dominate wall-clock on
    single-site strategies.
    """

    bytes: float = 0.0
    messages: float = 0.0
    eqids: float = 0.0
    local_work: float = 0.0

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_stats(cls, stats: Any, local_work: float = 0.0) -> "CostVector":
        """Lift a :class:`~repro.distributed.network.NetworkStats` snapshot.

        Duck-typed (``.bytes``/``.messages``/``.eqids_shipped``) so this
        module stays import-cycle free.
        """
        return cls(
            bytes=float(stats.bytes),
            messages=float(stats.messages),
            eqids=float(stats.eqids_shipped),
            local_work=local_work,
        )

    # -- arithmetic --------------------------------------------------------------------

    def __add__(self, other: "CostVector") -> "CostVector":
        return CostVector(
            self.bytes + other.bytes,
            self.messages + other.messages,
            self.eqids + other.eqids,
            self.local_work + other.local_work,
        )

    def __sub__(self, other: "CostVector") -> "CostVector":
        return CostVector(
            self.bytes - other.bytes,
            self.messages - other.messages,
            self.eqids - other.eqids,
            self.local_work - other.local_work,
        )

    def scale(self, factor: float) -> "CostVector":
        return CostVector(
            self.bytes * factor,
            self.messages * factor,
            self.eqids * factor,
            self.local_work * factor,
        )

    def with_local_work_rate(self, rate: float) -> "CostVector":
        """Re-price local work for a storage backend, keeping shipment as-is.

        Shipment counters are backend-invariant (the pushdown backends
        reproduce the row cost model exactly), so only the local-work
        dimension scales.
        """
        if rate == 1.0:
            return self
        return CostVector(self.bytes, self.messages, self.eqids, self.local_work * rate)

    # -- comparison ---------------------------------------------------------------------

    def shipment_scalar(self, message_overhead: float = MESSAGE_OVERHEAD_BYTES) -> float:
        """The shipment cost collapsed to bytes (the planner's primary key)."""
        return self.bytes + message_overhead * self.messages

    def relative_error(self, actual: "CostVector") -> float:
        """|estimate - actual| / actual on the decisive dimension.

        Compared on shipment bytes when either side ships; on local
        work otherwise (single-site strategies never ship).
        """
        if self.bytes or actual.bytes:
            return abs(self.bytes - actual.bytes) / max(1.0, actual.bytes)
        return abs(self.local_work - actual.local_work) / max(1.0, actual.local_work)

    def as_dict(self) -> dict[str, float]:
        return {
            "bytes": self.bytes,
            "messages": self.messages,
            "eqids": self.eqids,
            "local_work": self.local_work,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostVector(bytes={self.bytes:.0f}, messages={self.messages:.0f}, "
            f"eqids={self.eqids:.0f}, local_work={self.local_work:.0f})"
        )


def hev_plan_cost(plan: Any) -> CostVector:
    """Price an HEV plan: eqid shipments per unit update (Section 5).

    This is the objective ``optVer`` minimises; bytes follow from the
    fixed wire size of an eqid.
    """
    eqids = plan.eqid_shipments_per_update()
    return CostVector(bytes=float(eqids * EQID_BYTES), messages=float(eqids), eqids=float(eqids))
