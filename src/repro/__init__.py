"""repro — Incremental detection of CFD violations in distributed data.

A from-scratch Python reproduction of Fan, Li, Tang and Yu,
"Incremental Detection of Inconsistencies in Distributed Data"
(ICDE 2012 / IEEE TKDE 26(6), 2014).

The package provides:

* a relational core with conditional functional dependencies (CFDs),
  violation semantics and a centralized reference detector;
* vertical and horizontal fragmentation with a simulated multi-site
  cluster that accounts for every byte and every eqid shipped;
* the incremental detectors ``incVer`` (vertical) and ``incHor``
  (horizontal) with cost ``O(|delta-D| + |delta-V|)``, their batch
  counterparts ``batVer`` / ``batHor`` and the improved baselines of the
  paper's Exp-10;
* the ``optVer`` HEV-placement heuristic minimising eqid shipment;
* workload generators (TPCH-like, DBLP-like, the EMP running example)
  and the experiment harness that regenerates every figure and table of
  the paper's evaluation section;
* the detection engine: :func:`repro.session` builds a fluent
  :class:`DetectionSession` over any of the above through a pluggable
  strategy registry (``incVer``, ``batVer``, ``optVer``, ``incHor``,
  ``batHor``, improved baselines, centralized and MD detection), with
  ``apply``/``stream`` for updates and structured ``report()`` output.
"""

from repro.core import (
    CFD,
    Attribute,
    CentralizedDetector,
    PatternTuple,
    Relation,
    Schema,
    Tableau,
    Tuple,
    UNNAMED,
    Update,
    UpdateBatch,
    UpdateKind,
    ViolationDelta,
    ViolationSet,
    detect_violations,
    merge_into_tableaux,
)
from repro.distributed import Cluster, Network, NetworkStats, Site
from repro.columnar import ColumnStore, ValueDictionary, column_store_of
from repro.indexes import CFDIndex, EqidRegistry, HEVPlan, HEVPlanner, naive_chain_plan
from repro.partition import (
    AttributeEquals,
    AttributeIn,
    AttributeRange,
    BucketMap,
    HashBucket,
    MigrationPlan,
    MigrationResult,
    HorizontalFragment,
    HorizontalPartitioner,
    ReplicationScheme,
    VerticalFragment,
    VerticalPartitioner,
)
from repro.horizontal import (
    HorizontalBatchDetector,
    HorizontalIncrementalDetector,
    ImprovedHorizontalBatchDetector,
)
from repro.vertical import (
    ImprovedVerticalBatchDetector,
    VerticalBatchDetector,
    VerticalIncrementalDetector,
)
from repro.workloads import (
    DBLPGenerator,
    EmpWorkload,
    FDSpec,
    TPCHGenerator,
    generate_cfds,
    generate_updates,
)
from repro.engine import (
    DEFAULT_REGISTRY,
    AdaptiveStrategy,
    DetectionReport,
    DetectionSession,
    Detector,
    RegistryError,
    SessionBuilder,
    SessionError,
    SiteCost,
    StrategyRegistry,
    TopologyEvent,
    register_detector,
    register_partitioner,
    register_storage,
    session,
)
from repro.similarity import (
    EditDistanceSimilarity,
    ExactMatch,
    IncrementalMDDetector,
    JaccardSimilarity,
    MatchingDependency,
    MDDetector,
    NormalizedStringMatch,
    NumericTolerance,
    detect_md_violations,
)
from repro.planner import (
    AdaptivePlanner,
    CostVector,
    Estimate,
    PlanDecision,
    RebalancePolicy,
    hev_plan_cost,
)
from repro.stats import (
    EWMA,
    BatchProfile,
    SiteLoad,
    SiteLoadTracker,
    RelationStats,
    RuleProfile,
    StatsCatalog,
    StrategyFeedback,
)
from repro.service import (
    DetectionService,
    ServiceError,
    ServiceMetrics,
    SubmitResult,
    TenantFailed,
    TenantMetrics,
    TenantQuota,
)
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    Span,
    Tracer,
)
from repro.runtime import (
    EXECUTOR_BACKENDS,
    Executor,
    ExecutorError,
    ProcessExecutor,
    SchedulerTimings,
    SerialExecutor,
    SiteScheduler,
    SiteTask,
    TaskResult,
    ThreadExecutor,
    make_executor,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # core
    "Attribute",
    "Schema",
    "Tuple",
    "Relation",
    "CFD",
    "PatternTuple",
    "UNNAMED",
    "Tableau",
    "merge_into_tableaux",
    "ViolationSet",
    "ViolationDelta",
    "CentralizedDetector",
    "detect_violations",
    "Update",
    "UpdateBatch",
    "UpdateKind",
    # distribution
    "Cluster",
    "Network",
    "NetworkStats",
    "Site",
    # columnar storage backend
    "ColumnStore",
    "ValueDictionary",
    "column_store_of",
    # partitioning
    "VerticalFragment",
    "VerticalPartitioner",
    "HorizontalFragment",
    "HorizontalPartitioner",
    "ReplicationScheme",
    "AttributeEquals",
    "AttributeIn",
    "AttributeRange",
    "HashBucket",
    # indexes
    "EqidRegistry",
    "CFDIndex",
    "HEVPlan",
    "HEVPlanner",
    "naive_chain_plan",
    # detectors
    "VerticalIncrementalDetector",
    "VerticalBatchDetector",
    "ImprovedVerticalBatchDetector",
    "HorizontalIncrementalDetector",
    "HorizontalBatchDetector",
    "ImprovedHorizontalBatchDetector",
    # workloads
    "EmpWorkload",
    "TPCHGenerator",
    "DBLPGenerator",
    "FDSpec",
    "generate_cfds",
    "generate_updates",
    # cost-based planner and statistics
    "AdaptivePlanner",
    "AdaptiveStrategy",
    "BatchProfile",
    "CostVector",
    "EWMA",
    "Estimate",
    "PlanDecision",
    "RelationStats",
    "RuleProfile",
    "StatsCatalog",
    "StrategyFeedback",
    "SiteLoad",
    "SiteLoadTracker",
    "RebalancePolicy",
    "BucketMap",
    "MigrationPlan",
    "MigrationResult",
    "hev_plan_cost",
    # detection engine
    "session",
    "SessionBuilder",
    "SessionError",
    "DetectionSession",
    "DetectionReport",
    "Detector",
    "SiteCost",
    "TopologyEvent",
    "StrategyRegistry",
    "RegistryError",
    "DEFAULT_REGISTRY",
    "register_detector",
    "register_partitioner",
    "register_storage",
    # multi-tenant detection service
    "DetectionService",
    "ServiceError",
    "ServiceMetrics",
    "SubmitResult",
    "TenantFailed",
    "TenantMetrics",
    "TenantQuota",
    # observability: tracing, metrics, profiling hooks
    "Observability",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    # parallel execution runtime
    "EXECUTOR_BACKENDS",
    "Executor",
    "ExecutorError",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SiteScheduler",
    "SiteTask",
    "TaskResult",
    "SchedulerTimings",
    "make_executor",
    # similarity extension (matching dependencies)
    "MatchingDependency",
    "MDDetector",
    "IncrementalMDDetector",
    "detect_md_violations",
    "ExactMatch",
    "NormalizedStringMatch",
    "NumericTolerance",
    "JaccardSimilarity",
    "EditDistanceSimilarity",
]
