"""Building HEVs: the naive per-CFD chains and the ``optVer`` heuristic.

Section 5 of the paper shows that choosing *which* HEVs to build, *where*
to place them and *how* to share them among CFDs changes the number of
eqids shipped per unit update, formalises minimising that number as an
NP-complete optimization problem (minimum eqid shipment), and gives the
heuristic ``optVer`` (Fig. 7).  This module implements:

* :func:`naive_chain_plan` — the unoptimized baseline: every CFD gets its
  own chain of prefix HEVs (no sharing of non-base HEVs between CFDs),
  corresponding to Fig. 6(a);
* :class:`HEVPlanner` — ``optVer``: initialise with the HEVs required by
  the IDX keys, expand with shared-intersection HEVs and base HEVs,
  place every HEV with ``findLoc``, then greedily remove redundant HEVs
  while keeping every IDX key computable, retaining the solution with
  the fewest eqid shipments.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Iterable, Mapping, Sequence

from repro.core.cfd import CFD
from repro.indexes.equivalence import EqidRegistry
from repro.indexes.hev import CFDPlanEntry, HEVNode, HEVPlan
from repro.partition.replication import ReplicationScheme
from repro.partition.vertical import VerticalPartitioner
from repro.planner.cost import CostVector, hev_plan_cost


def _plannable(cfds: Iterable[CFD], partitioner: VerticalPartitioner) -> list[CFD]:
    """The CFDs that actually need HEVs: variable CFDs not locally checkable."""
    selected = []
    for cfd in cfds:
        if cfd.is_constant():
            continue
        if partitioner.is_local(cfd.attributes) is not None:
            continue
        selected.append(cfd)
    return selected


def _attribute_order(attrs: Sequence[str], replication: ReplicationScheme) -> list[str]:
    """Deterministic attribute order used when chaining prefix HEVs."""
    return sorted(attrs, key=lambda a: (min(replication.sites_of(a)), a))


def naive_chain_plan(
    cfds: Iterable[CFD],
    replication: ReplicationScheme | VerticalPartitioner,
    registry: EqidRegistry | None = None,
) -> HEVPlan:
    """The unoptimized plan: independent prefix chains per CFD (Fig. 6(a)).

    Base HEVs (one per attribute) are shared by all CFDs, as in the
    paper; non-base HEVs are private to each CFD even when two CFDs
    share a prefix, which is exactly what "no sharing between the HEVs
    of different CFDs" means.
    """
    if isinstance(replication, VerticalPartitioner):
        replication = ReplicationScheme(replication)
    partitioner = replication.partitioner
    base_nodes: dict[str, HEVNode] = {}

    def base(attr: str) -> HEVNode:
        if attr not in base_nodes:
            site = min(replication.sites_of(attr))
            base_nodes[attr] = HEVNode((attr,), site, label=f"H_{attr}")
        return base_nodes[attr]

    entries: dict[str, CFDPlanEntry] = {}
    nodes: list[HEVNode] = []
    for cfd in _plannable(cfds, partitioner):
        ordered = _attribute_order(cfd.lhs, replication)
        previous: HEVNode | None = None
        for i, attr in enumerate(ordered):
            if i == 0:
                previous = base(attr)
                continue
            site_candidates = replication.sites_of(attr)
            site = min(site_candidates)
            node = HEVNode(
                tuple(ordered[: i + 1]),
                site,
                label=f"H_{'_'.join(ordered[: i + 1])}@{cfd.name}",
            )
            node.inputs = [previous, base(attr)]
            nodes.append(node)
            previous = node
        assert previous is not None
        entries[cfd.name] = CFDPlanEntry(cfd, previous, base(cfd.rhs))
    nodes.extend(base_nodes.values())
    return HEVPlan(nodes, entries, registry)


class HEVPlanner:
    """The ``optVer`` heuristic (Fig. 7 of the paper).

    Parameters
    ----------
    partitioner:
        The vertical partition scheme.
    replication:
        Optional replication scheme; defaults to the partitioner's
        primary placement only.
    beam_width:
        The parameter ``k`` of the paper: how many candidate solutions
        are retained at each step of the finalization search.
    max_rounds:
        Safety bound on the number of removal rounds (the search also
        stops as soon as no removal improves the plan).
    """

    def __init__(
        self,
        partitioner: VerticalPartitioner,
        replication: ReplicationScheme | None = None,
        beam_width: int = 4,
        max_rounds: int = 25,
    ):
        self._partitioner = partitioner
        self._replication = replication or ReplicationScheme(partitioner)
        self._beam_width = max(1, beam_width)
        self._max_rounds = max(1, max_rounds)

    # -- findLoc -------------------------------------------------------------------

    def _find_location(self, attrs: frozenset[str], placed: Counter) -> int:
        """``findLoc``: the site covering the most of ``attrs`` locally,
        breaking ties by how many already-placed HEVs reside there."""
        best_site = None
        best_score: tuple[int, int, int] | None = None
        for site in self._partitioner.sites():
            local = self._replication.attributes_at(site)
            coverage = len(attrs & local)
            score = (coverage, placed.get(site, 0), -site)
            if best_score is None or score > best_score:
                best_score = score
                best_site = site
        assert best_site is not None
        return best_site

    def _base_location(self, attr: str, placed: Counter) -> int:
        """Base HEVs must live where the raw attribute is stored."""
        candidates = sorted(self._replication.sites_of(attr))
        best = max(candidates, key=lambda s: (placed.get(s, 0), -s))
        return best

    # -- input resolution and cost -----------------------------------------------------

    @staticmethod
    def _resolve_inputs(nodes: list[HEVNode]) -> bool:
        """Greedily pick inputs for every non-base node from the given pool.

        Inputs must have strictly smaller attribute sets contained in the
        node's attributes; at each step the candidate covering the most
        still-uncovered attributes is taken (preferring co-located and
        larger candidates on ties).  Returns False if some node cannot be
        covered with the pool.
        """
        by_size = sorted(nodes, key=lambda n: len(n.attributes))
        for node in by_size:
            if node.is_base:
                node.inputs = []
                continue
            target = set(node.attributes)
            uncovered = set(target)
            candidates = [
                other
                for other in nodes
                if other is not node and set(other.attributes) < target
            ]
            chosen: list[HEVNode] = []
            while uncovered:
                best = None
                best_score: tuple[int, int, int] | None = None
                for cand in candidates:
                    gain = len(uncovered & set(cand.attributes))
                    if gain == 0:
                        continue
                    score = (gain, 1 if cand.site == node.site else 0, len(cand.attributes))
                    if best_score is None or score > best_score:
                        best_score = score
                        best = cand
                if best is None:
                    return False
                chosen.append(best)
                uncovered -= set(best.attributes)
            node.inputs = chosen
        return True

    def _cost(
        self, nodes: list[HEVNode], entries: Mapping[str, CFDPlanEntry]
    ) -> CostVector | None:
        """The cost of a candidate node pool, or None if it is not viable.

        Priced through the shared cost core
        (:func:`repro.planner.cost.hev_plan_cost`); the search minimises
        the ``eqids`` dimension — Neqid of the paper.
        """
        if not self._resolve_inputs(nodes):
            return None
        plan = HEVPlan(nodes, entries)
        return hev_plan_cost(plan)

    # -- the optVer search ----------------------------------------------------------------

    def plan(
        self, cfds: Iterable[CFD], registry: EqidRegistry | None = None
    ) -> HEVPlan:
        """Run ``optVer`` and return the best plan found.

        The naive per-CFD chain plan is also evaluated; if the heuristic
        cannot beat it (possible, since both are heuristics for an
        NP-complete problem) the cheaper of the two is returned, so the
        result never ships more eqids than the unoptimized baseline.
        """
        cfds = list(cfds)
        plannable = _plannable(cfds, self._partitioner)
        naive = naive_chain_plan(cfds, self._replication, registry)
        if not plannable:
            return naive

        placed: Counter = Counter()
        # (1) Initialization: one HEV per distinct CFD LHS (the IDX keys).
        idx_nodes: dict[frozenset[str], HEVNode] = {}
        for cfd in plannable:
            key = frozenset(cfd.lhs)
            if key not in idx_nodes:
                node = HEVNode(tuple(sorted(key)), 0, label="H_" + "_".join(sorted(key)))
                idx_nodes[key] = node
        # (2) Expansion: shared-intersection HEVs and base HEVs.
        pool: dict[frozenset[str], HEVNode] = dict(idx_nodes)
        lhs_sets = [frozenset(cfd.lhs) for cfd in plannable]
        for left, right in combinations(sorted(lhs_sets, key=sorted), 2):
            shared = left & right
            if len(shared) >= 2 and shared not in pool:
                pool[shared] = HEVNode(
                    tuple(sorted(shared)), 0, label="H_" + "_".join(sorted(shared))
                )
        base_attrs = {a for cfd in plannable for a in cfd.attributes}
        base_nodes: dict[str, HEVNode] = {}
        for attr in sorted(base_attrs):
            node = HEVNode((attr,), 0, label=f"H_{attr}")
            base_nodes[attr] = node
        # (3) Location assignment.  For the HEVs that serve as IDX keys we also
        # weigh in the RHS attributes of the CFDs they serve: co-locating the IDX
        # with the RHS's base HEV saves the eqid shipment for t[B].
        location_hint: dict[frozenset[str], set[str]] = {
            key: set(key) for key in pool
        }
        for cfd in plannable:
            location_hint[frozenset(cfd.lhs)].add(cfd.rhs)
        for attr, node in base_nodes.items():
            node.site = self._base_location(attr, placed)
            placed[node.site] += 1
        for key, node in sorted(pool.items(), key=lambda kv: sorted(kv[0])):
            node.site = self._find_location(frozenset(location_hint[key]), placed)
            placed[node.site] += 1

        entries: dict[str, CFDPlanEntry] = {}
        for cfd in plannable:
            entries[cfd.name] = CFDPlanEntry(
                cfd, idx_nodes[frozenset(cfd.lhs)], base_nodes[cfd.rhs]
            )

        all_nodes = list(pool.values()) + list(base_nodes.values())
        required = {id(node) for node in idx_nodes.values()}
        required |= {id(entry.rhs_node) for entry in entries.values()}

        best_nodes = list(all_nodes)
        best_cost = self._cost(best_nodes, entries)
        if best_cost is None:
            return naive

        # (4) Finalization: beam-limited greedy removal of redundant HEVs.
        frontier: list[list[HEVNode]] = [list(all_nodes)]
        for _ in range(self._max_rounds):
            candidates: list[tuple[float, list[HEVNode]]] = []
            for state in frontier:
                for node in state:
                    if id(node) in required:
                        continue
                    reduced = [n for n in state if n is not node]
                    cost = self._cost(reduced, entries)
                    if cost is None:
                        continue
                    candidates.append((cost.eqids, reduced))
            if not candidates:
                break
            candidates.sort(key=lambda item: item[0])
            frontier = [state for _, state in candidates[: self._beam_width]]
            if candidates[0][0] <= best_cost.eqids:
                best_eqids, best_nodes = candidates[0]
                best_cost = CostVector(eqids=best_eqids)

        final_cost = self._cost(best_nodes, entries)
        if final_cost is None:
            return naive
        if final_cost.eqids >= naive.eqid_shipments_per_update():
            return naive
        return HEVPlan(best_nodes, entries, registry)

    def compare(self, cfds: Iterable[CFD]) -> dict[str, int]:
        """Eqid shipments per unit update, unoptimized vs optimized (Fig. 10)."""
        cfds = list(cfds)
        naive = naive_chain_plan(cfds, self._replication)
        optimized = self.plan(cfds)
        return {
            "without_optimization": naive.eqid_shipments_per_update(),
            "with_optimization": optimized.eqid_shipments_per_update(),
        }
