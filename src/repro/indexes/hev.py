"""HEV indices and HEV plans.

An HEV (Hash-based Equivalence class and Value index) maps either a raw
attribute value (a *base* HEV) or a combination of eqids produced by
other HEVs (a *non-base* HEV) to the eqid of the combined equivalence
class.  HEVs live at specific sites: whenever a non-base HEV needs an
eqid produced at another site, that eqid must be shipped — and those
shipments are the entire communication cost of the vertical incremental
algorithm.

:class:`HEVNode` describes one HEV (attributes, site, inputs);
:class:`HEVPlan` bundles the HEVs chosen for a set of CFDs, evaluates
IDX keys for concrete tuples while charging eqid shipments to a
:class:`~repro.distributed.network.Network`, and computes the static
per-update shipment count ``Neqid`` used by the planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Mapping, Sequence

from repro.core.cfd import CFD
from repro.distributed.message import MessageKind
from repro.distributed.network import Network
from repro.distributed.serialization import EQID_BYTES
from repro.indexes.equivalence import EqidRegistry
from repro.obs import profile as _prof


class PlanError(RuntimeError):
    """Raised when a plan cannot compute a required IDX key."""


@dataclass
class HEVNode:
    """One HEV hash table: an attribute set placed at a site.

    ``inputs`` lists the HEVs whose eqids form this HEV's key; they are
    resolved by the plan (greedily, largest-cover-first) and therefore
    not part of object identity.  A node over a single attribute with no
    inputs is a *base* HEV: its key is the raw attribute value.
    """

    attributes: tuple[str, ...]
    site: int
    label: str = ""
    inputs: list["HEVNode"] = field(default_factory=list, compare=False, repr=False)

    def __post_init__(self) -> None:
        self.attributes = tuple(sorted(set(self.attributes)))
        if not self.attributes:
            raise ValueError("an HEV needs at least one attribute")
        if not self.label:
            self.label = "H_" + "_".join(self.attributes)

    @property
    def is_base(self) -> bool:
        """Base HEVs key on a single raw attribute value."""
        return len(self.attributes) == 1

    def attribute_set(self) -> frozenset[str]:
        return frozenset(self.attributes)

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class ShipmentCache:
    """Per-update memo of eqids already shipped to a destination site.

    The paper notes that when the eqid of ``t[A]`` is shipped from S1 to
    S3 it can be used by every HEV at S3, so it is shipped only once per
    update.  The cache is keyed by (producing HEV, destination site).
    """

    def __init__(self) -> None:
        self._seen: set[tuple[int, int]] = set()

    def already_shipped(self, node: HEVNode, destination: int) -> bool:
        return (id(node), destination) in self._seen

    def mark(self, node: HEVNode, destination: int) -> None:
        self._seen.add((id(node), destination))


@dataclass
class CFDPlanEntry:
    """The plan's bookkeeping for one general variable CFD."""

    cfd: CFD
    lhs_node: HEVNode
    rhs_node: HEVNode

    @property
    def idx_site(self) -> int:
        """The site hosting the IDX for this CFD (where the LHS HEV lives)."""
        return self.lhs_node.site


class HEVPlan:
    """A resolved set of HEVs serving the IDX keys of a set of CFDs."""

    def __init__(
        self,
        nodes: Sequence[HEVNode],
        entries: Mapping[str, CFDPlanEntry],
        registry: EqidRegistry | None = None,
    ):
        self._nodes = list(nodes)
        self._entries = dict(entries)
        self._registry = registry or EqidRegistry()

    # -- introspection ---------------------------------------------------------------

    @property
    def nodes(self) -> list[HEVNode]:
        return list(self._nodes)

    @property
    def registry(self) -> EqidRegistry:
        return self._registry

    def entry_for(self, cfd_name: str) -> CFDPlanEntry:
        try:
            return self._entries[cfd_name]
        except KeyError:
            raise PlanError(f"plan has no entry for CFD {cfd_name!r}") from None

    def cfd_names(self) -> list[str]:
        return sorted(self._entries)

    def idx_site(self, cfd_name: str) -> int:
        return self.entry_for(cfd_name).idx_site

    # -- evaluation (dynamic: per concrete update, charging the network) -----------------

    def _evaluate_node(
        self,
        node: HEVNode,
        values: Mapping[str, Any],
        destination: int,
        network: Network | None,
        cache: ShipmentCache,
    ) -> int:
        """Compute the eqid of ``[t]_{node.attributes}`` for the tuple ``values``.

        Inputs are evaluated first (each shipping its eqid to this
        node's site if it lives elsewhere); the resulting eqid is then
        shipped to ``destination`` if this node lives elsewhere and the
        shipment has not already happened for this update.
        """
        for input_node in node.inputs:
            self._evaluate_node(input_node, values, node.site, network, cache)
        eqid = self._registry.get_or_create(node.attributes, values)
        if node.site != destination and not cache.already_shipped(node, destination):
            cache.mark(node, destination)
            if network is not None:
                network.send(
                    node.site,
                    destination,
                    MessageKind.EQID,
                    eqid,
                    EQID_BYTES,
                    units=1,
                    tag=node.label,
                )
        return eqid

    def evaluate_keys(
        self,
        cfd_name: str,
        values: Mapping[str, Any],
        network: Network | None = None,
        cache: ShipmentCache | None = None,
    ) -> tuple[int, int]:
        """Compute ``(id[t_X], id[t_B])`` for a CFD and a concrete tuple.

        Eqid shipments implied by the plan are charged to ``network``;
        ``cache`` should be shared across all CFDs for one update so
        that a shared HEV's eqid is shipped to a site at most once.
        """
        if _prof.enabled:
            _t0 = perf_counter()
        entry = self.entry_for(cfd_name)
        cache = cache if cache is not None else ShipmentCache()
        lhs_eqid = self._evaluate_node(
            entry.lhs_node, values, entry.lhs_node.site, network, cache
        )
        rhs_eqid = self._evaluate_node(
            entry.rhs_node, values, entry.lhs_node.site, network, cache
        )
        if _prof.enabled:
            _prof.note("hev.evaluate_keys", perf_counter() - _t0)
        return lhs_eqid, rhs_eqid

    # -- static cost model (Neqid) -----------------------------------------------------------

    def _collect_edges(
        self, node: HEVNode, destination: int, edges: set[tuple[int, int]]
    ) -> None:
        for input_node in node.inputs:
            self._collect_edges(input_node, node.site, edges)
        if node.site != destination:
            edges.add((id(node), destination))

    def eqid_shipments_per_update(self) -> int:
        """``Neqid``: eqids shipped for one unit update, independent of D and t.

        This is the objective the planner minimises.  It counts unique
        (HEV, destination-site) pairs over all CFD entries, mirroring
        the per-update :class:`ShipmentCache` semantics.
        """
        edges: set[tuple[int, int]] = set()
        for entry in self._entries.values():
            self._collect_edges(entry.lhs_node, entry.lhs_node.site, edges)
            self._collect_edges(entry.rhs_node, entry.lhs_node.site, edges)
        return len(edges)
