"""Equivalence classes and their identifiers (eqids).

Two tuples are equivalent w.r.t. an attribute set ``Y`` when they agree
on all attributes of ``Y``; ``[t]_Y`` is the equivalence class of ``t``
and ``id[t_Y]`` its identifier.  The vertical incremental algorithm
never ships attribute values across sites — it ships these identifiers,
which is how the communication cost becomes independent of value sizes
and of |D| (Section 4).

:class:`EqidRegistry` assigns eqids deterministically and is the shared
"semantic" store behind every HEV hash table: an HEV over ``Y`` located
at site ``S`` conceptually owns the portion of the registry keyed by
``Y``; the registry itself performs no communication (shipment is
accounted for by :class:`~repro.indexes.hev.HEVPlan`).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping


class EqidRegistry:
    """Assigns stable identifiers to equivalence classes ``[t]_Y``.

    Identifiers are per attribute set: the eqid of ``[t]_{CC}`` and the
    eqid of ``[t]_{CC, zip}`` live in different namespaces, exactly like
    the separate HEV hash tables of the paper.
    """

    def __init__(self) -> None:
        self._tables: dict[tuple[str, ...], dict[tuple[Hashable, ...], int]] = {}
        self._counters: dict[tuple[str, ...], int] = {}

    @staticmethod
    def _normalize(attributes: Iterable[str]) -> tuple[str, ...]:
        return tuple(sorted(attributes))

    def _key_for(self, attributes: tuple[str, ...], values: Mapping[str, Any]) -> tuple:
        return tuple(values[a] for a in attributes)

    # -- lookups ---------------------------------------------------------------

    def get_or_create(self, attributes: Iterable[str], values: Mapping[str, Any]) -> int:
        """The eqid of ``[t]_Y`` for ``Y = attributes``, creating it if new."""
        attrs = self._normalize(attributes)
        table = self._tables.setdefault(attrs, {})
        key = self._key_for(attrs, values)
        eqid = table.get(key)
        if eqid is None:
            eqid = self._counters.get(attrs, 0) + 1
            self._counters[attrs] = eqid
            table[key] = eqid
        return eqid

    def lookup(self, attributes: Iterable[str], values: Mapping[str, Any]) -> int | None:
        """The eqid of ``[t]_Y`` if the class has been seen, else None."""
        attrs = self._normalize(attributes)
        table = self._tables.get(attrs)
        if table is None:
            return None
        return table.get(self._key_for(attrs, values))

    def classes_for(self, attributes: Iterable[str]) -> int:
        """How many distinct classes exist for an attribute set (diagnostics)."""
        attrs = self._normalize(attributes)
        return len(self._tables.get(attrs, {}))

    def attribute_sets(self) -> list[tuple[str, ...]]:
        """All attribute sets for which classes have been registered."""
        return sorted(self._tables)

    def clear(self) -> None:
        self._tables.clear()
        self._counters.clear()
