"""Index structures for incremental detection (Sections 4 and 5).

* :mod:`repro.indexes.equivalence` — equivalence classes ``[t]_Y`` and
  their identifiers (eqids).
* :mod:`repro.indexes.hev` — HEV hash indices (base and non-base) and
  HEV plans, which determine how many eqids travel between sites when a
  single update is processed.
* :mod:`repro.indexes.idx` — the IDX index: for each LHS equivalence
  class, the distinct RHS values and their tuple ids.
* :mod:`repro.indexes.planner` — the ``optVer`` heuristic that places
  and shares HEVs to minimise eqid shipment, plus the naive per-CFD
  chain plan used as the unoptimized baseline.
"""

from repro.indexes.equivalence import EqidRegistry
from repro.indexes.hev import HEVNode, HEVPlan, ShipmentCache
from repro.indexes.idx import CFDIndex
from repro.indexes.planner import HEVPlanner, naive_chain_plan

__all__ = [
    "EqidRegistry",
    "HEVNode",
    "HEVPlan",
    "ShipmentCache",
    "CFDIndex",
    "HEVPlanner",
    "naive_chain_plan",
]
