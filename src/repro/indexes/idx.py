"""The IDX index of Section 4.

For a variable CFD ``phi = (X -> B, tp)``, the IDX groups the tuples
that the CFD applies to (those whose ``X`` values match ``tp[X]``) by
their LHS equivalence class; inside each class it stores the distinct
``B`` values and, per value, the set of tuple ids: this is exactly
``set(t[X])`` of the paper — "for each ``[t]_X`` an IDX stores distinct
values of the B attribute and their associated tuple ids".

The same structure is used per site by the horizontal detector (keyed by
local tuples only) and globally by the vertical detector (stored at the
site the HEV plan assigns to the CFD).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Hashable, Iterable, Mapping

from repro.core.cfd import CFD, UNNAMED
from repro.core.tuples import Tuple
from repro.obs import profile as _prof


class IndexError_(RuntimeError):
    """Raised when the index is asked to remove an unknown tuple."""


class CFDIndex:
    """Group index for one variable CFD: LHS key -> {RHS value -> {tids}}."""

    def __init__(self, cfd: CFD):
        if cfd.is_constant():
            raise ValueError(
                f"CFDIndex only applies to variable CFDs; {cfd.name!r} is constant"
            )
        self._cfd = cfd
        self._groups: dict[tuple[Hashable, ...], dict[Any, set[Any]]] = {}
        # Hot-path caches: the per-tuple methods below run once per tuple
        # per CFD, so resolve the attribute lists and the pattern's LHS
        # constants once here instead of walking the pattern entries
        # (a linear scan each) on every call.
        self._lhs: tuple[str, ...] = cfd.lhs
        self._rhs: str = cfd.rhs
        self._lhs_constants: tuple[tuple[str, Any], ...] = tuple(
            (a, cfd.pattern.entry(a))
            for a in cfd.lhs
            if cfd.pattern.entry(a) is not UNNAMED
        )

    @property
    def cfd(self) -> CFD:
        return self._cfd

    # -- keying --------------------------------------------------------------------

    def lhs_key(self, t: Mapping[str, Any]) -> tuple[Hashable, ...]:
        """The grouping key ``t[X]`` (the semantic content of ``id[t_X]``)."""
        return tuple(t[a] for a in self._lhs)

    def applies_to(self, t: Mapping[str, Any]) -> bool:
        """Whether the CFD's pattern covers ``t`` (i.e. ``t[X] ~ tp[X]``)."""
        for a, constant in self._lhs_constants:
            if t[a] != constant:
                return False
        return True

    # -- queries -----------------------------------------------------------------------

    def classes(self, lhs_key: tuple[Hashable, ...]) -> dict[Any, set[Any]]:
        """``set(t[X])``: distinct B values of the group, each with its tids.

        The returned mapping is a shallow copy; mutating it does not
        affect the index.
        """
        group = self._groups.get(lhs_key, {})
        return {value: set(tids) for value, tids in group.items()}

    def class_count(self, lhs_key: tuple[Hashable, ...]) -> int:
        """``|set(t[X])|``: how many distinct B values the group holds."""
        return len(self._groups.get(lhs_key, ()))

    def class_of(self, lhs_key: tuple[Hashable, ...], rhs_value: Any) -> set[Any]:
        """``[t]_{X ∪ {B}}``: the tids sharing both the LHS key and the B value."""
        return set(self._groups.get(lhs_key, {}).get(rhs_value, ()))

    def group_size(self, lhs_key: tuple[Hashable, ...]) -> int:
        """Total number of tuples in the LHS group."""
        return sum(len(tids) for tids in self._groups.get(lhs_key, {}).values())

    def groups(self) -> Iterable[tuple[tuple[Hashable, ...], dict[Any, set[Any]]]]:
        """Iterate over (lhs_key, {rhs_value: tids}) pairs (diagnostics/tests)."""
        for key, group in self._groups.items():
            yield key, {value: set(tids) for value, tids in group.items()}

    def __len__(self) -> int:
        """Number of LHS groups currently indexed."""
        return len(self._groups)

    def total_tuples(self) -> int:
        return sum(
            len(tids) for group in self._groups.values() for tids in group.values()
        )

    # -- maintenance ----------------------------------------------------------------------

    def add_tuple(self, t: Tuple) -> bool:
        """Index ``t`` if the CFD applies to it.  Returns True if indexed."""
        if not self.applies_to(t):
            return False
        self.add(self.lhs_key(t), t[self._rhs], t.tid)
        return True

    def add(self, lhs_key: tuple[Hashable, ...], rhs_value: Any, tid: Any) -> None:
        self._groups.setdefault(lhs_key, {}).setdefault(rhs_value, set()).add(tid)

    def remove_tuple(self, t: Tuple) -> bool:
        """Remove ``t`` if the CFD applies to it.  Returns True if removed."""
        if not self.applies_to(t):
            return False
        self.remove(self.lhs_key(t), t[self._rhs], t.tid)
        return True

    def remove(self, lhs_key: tuple[Hashable, ...], rhs_value: Any, tid: Any) -> None:
        group = self._groups.get(lhs_key)
        if not group or rhs_value not in group or tid not in group[rhs_value]:
            raise IndexError_(
                f"tuple {tid!r} not indexed under key {lhs_key!r} / value {rhs_value!r}"
            )
        group[rhs_value].discard(tid)
        if not group[rhs_value]:
            del group[rhs_value]
        if not group:
            del self._groups[lhs_key]

    def load_group(
        self, lhs_key: tuple[Hashable, ...], by_rhs: Mapping[Any, set[Any]]
    ) -> None:
        """Merge one pre-grouped equivalence class (bulk columnar builds)."""
        group = self._groups.setdefault(lhs_key, {})
        for rhs_value, tids in by_rhs.items():
            group.setdefault(rhs_value, set()).update(tids)

    def build_from(self, tuples: Iterable[Tuple]) -> None:
        """Index every applicable tuple of an iterable (initial build).

        Column-backed relations are bulk-loaded from their encoded
        columns: the grouped LHS keys are computed once per relation
        (and shared with every other index/kernel over the same
        attributes) instead of once per tuple.
        """
        from repro.columnar.store import column_store_of
        from repro.sqlstore.store import sql_store_of

        store = column_store_of(tuples)
        if store is not None:
            from repro.columnar import kernels

            kernels.build_cfd_index(self, store)
            return
        sql_store = sql_store_of(tuples)
        if sql_store is not None:
            # SQL-backed relations build from one pushed-down
            # pattern-filtered scan, grouped as it streams back.
            from repro.sqlstore import kernels as sql_kernels

            sql_kernels.build_cfd_index(self, sql_store)
            return
        if _prof.enabled:
            _t0 = perf_counter()
            count = 0
            for t in tuples:
                self.add_tuple(t)
                count += 1
            _prof.note("idx.build_rows", perf_counter() - _t0, count)
            return
        for t in tuples:
            self.add_tuple(t)
