"""The worker half of the warm process backends (spawn-safe module).

A worker is a long-lived child process running :func:`worker_main` over
one duplex pipe.  The protocol is deliberately tiny — five message
kinds, every payload explicitly pickled by the sender so both ends can
meter exactly what crosses the boundary:

``("publish", key, meta, buffers)``
    Make a columnar fragment resident: attach the shm segment named in
    ``meta`` (zero-copy) or rebuild from the inline ``buffers`` fallback.
    Replaces any previous resident under ``key``.
``("delta", key, ops)``
    Catch the resident replica up by replaying a journal slice.
``("drop", key)``
    Release a resident (views, segment attachment).
``("task", index, fn, args)``
    Run one task; :class:`ResidentRef` markers inside ``args`` resolve
    to resident relations.  Replies ``("ok", index, seconds, value)`` or
    ``("err", index, exc, traceback_text)``.
``("stop",)``
    Release everything and exit.

Publish/delta failures are *deferred*: the error is parked on the
resident entry and raised by the first task that dereferences it, so the
strict send-N/receive-N accounting of the round protocol never skews.

Attached segments are never registered with ``multiprocessing``'s
resource tracker — the coordinator owns every segment and unlinks it.
Attach-side registration would be worse than redundant: a worker's
REGISTER can reach the tracker pipe *after* the coordinator's
UNREGISTER (the tracker cache is a plain set of names), leaving a stale
entry the tracker then warns about and re-unlinks at shutdown.
"""

from __future__ import annotations

import pickle
import traceback
from time import perf_counter
from typing import Any


class ResidentRef:
    """A picklable placeholder for a fragment resident in the worker."""

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResidentRef({self.key!r})"


class _Resident:
    __slots__ = ("relation", "shm", "views", "error")

    def __init__(self, relation=None, shm=None, views=(), error=None):
        self.relation = relation
        self.shm = shm
        self.views = views
        self.error = error


def _attach_segment(name: str):
    """Attach a coordinator-owned segment without tracker registration.

    Python 3.13+ exposes ``track=False``; earlier versions register
    unconditionally on attach, so suppress the registration around the
    call (safe: the worker loop is single-threaded).
    """
    from multiprocessing.shared_memory import SharedMemory

    try:
        return SharedMemory(name=name, track=False)  # pragma: no cover - 3.13+
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    registered = resource_tracker.register

    def _skip_shm(rname, rtype):
        if rtype != "shared_memory":
            registered(rname, rtype)

    resource_tracker.register = _skip_shm
    try:
        return SharedMemory(name=name)
    finally:
        resource_tracker.register = registered


def _attach(meta: dict, buffers) -> _Resident:
    from repro.columnar.shmcol import attach_relation

    shm = None
    if meta["shm"] is not None:
        shm = _attach_segment(meta["shm"])
        relation, views = attach_relation(meta, shm.buf)
    else:
        relation, views = attach_relation(meta, None, buffers)
    return _Resident(relation, shm, views)


def _release(resident: _Resident) -> None:
    for view in resident.views:
        view.release()
    resident.views = ()
    resident.relation = None
    if resident.shm is not None:
        try:
            resident.shm.close()
        except BufferError:  # pragma: no cover - a task kept a view alive
            pass
        resident.shm = None


def _resolve(obj: Any, residents: dict) -> Any:
    """Swap :class:`ResidentRef` markers for resident relations, recursively."""
    if isinstance(obj, ResidentRef):
        entry = residents.get(obj.key)
        if entry is None:
            raise RuntimeError(f"no resident fragment under key {obj.key!r}")
        if entry.error is not None:
            raise entry.error
        return entry.relation
    if type(obj) is tuple:
        return tuple(_resolve(item, residents) for item in obj)
    if type(obj) is list:
        return [_resolve(item, residents) for item in obj]
    if type(obj) is dict:
        return {k: _resolve(v, residents) for k, v in obj.items()}
    return obj


def _error_reply(index: int, exc: BaseException) -> tuple:
    text = traceback.format_exc()
    try:
        pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        payload: BaseException = exc
    except Exception:
        payload = RuntimeError(f"{type(exc).__name__}: {exc}")
    return ("err", index, payload, text)


def worker_main(conn) -> None:
    """The worker loop: receive commands on ``conn`` until stop/EOF."""
    residents: dict[Any, _Resident] = {}
    try:
        while True:
            try:
                blob = conn.recv_bytes()
            except (EOFError, OSError):
                break
            message = pickle.loads(blob)
            kind = message[0]
            if kind == "stop":
                break
            if kind == "task":
                _, index, fn, args = message
                try:
                    args = _resolve(args, residents)
                    start = perf_counter()
                    value = fn(*args)
                    reply = ("ok", index, perf_counter() - start, value)
                except BaseException as exc:
                    reply = _error_reply(index, exc)
                try:
                    out = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
                except Exception as exc:  # unpicklable result
                    out = pickle.dumps(
                        _error_reply(index, exc), protocol=pickle.HIGHEST_PROTOCOL
                    )
                conn.send_bytes(out)
            elif kind == "publish":
                _, key, meta, buffers = message
                stale = residents.pop(key, None)
                if stale is not None:
                    _release(stale)
                try:
                    residents[key] = _attach(meta, buffers)
                except BaseException as exc:
                    residents[key] = _Resident(error=exc)
            elif kind == "delta":
                _, key, ops = message
                entry = residents.get(key)
                if entry is None:
                    residents[key] = _Resident(
                        error=RuntimeError(f"delta for absent resident {key!r}")
                    )
                elif entry.error is None:
                    try:
                        from repro.columnar.shmcol import apply_delta

                        apply_delta(entry.relation, ops)
                    except BaseException as exc:
                        entry.error = exc
            elif kind == "drop":
                stale = residents.pop(message[1], None)
                if stale is not None:
                    _release(stale)
    finally:
        for resident in residents.values():
            _release(resident)
        residents.clear()
        conn.close()
