"""The shared-memory backend: zero-copy fragment fan-out, warm workers.

:class:`SharedMemoryExecutor` extends the warm
:class:`~repro.runtime.executor.ProcessExecutor` with *fragment
residency*.  Columnar relations found in task arguments are not pickled
into the task message; instead the executor

1. **publishes** the fragment once — packed code buffers into one
   ``multiprocessing.shared_memory`` segment (attached zero-copy in the
   worker, see :mod:`repro.columnar.shmcol`) plus a small pickled meta
   payload — and replaces the argument with a
   :class:`~repro.runtime.ipc.ResidentRef` marker;
2. **catches the replica up by delta** on later rounds: the store's
   mutation journal (decoded values, never codes) crosses the pipe
   instead of the fragment;
3. **republishes** only when it must — the store object changed
   identity (e.g. a re-partitioning rebuilt the fragment), the journal
   overflowed, or the worker was respawned after a crash.

Elasticity integrates through exactly these rules: an in-place
migration (``scale()``/``rebalance()`` moving buckets between sites)
appears as journal deltas on the touched fragments only, while a
rebuilt fragment (new store identity) triggers a republish of just that
site — untouched resident fragments keep their warm state.

The coordinator owns every segment: it creates, tracks and unlinks them
(on invalidation and at :meth:`close`), so segments cannot leak even
when a worker dies without cleaning up.  Workers merely attach and
detach.  Equal fragments published to several workers share one segment
per ``(store uid, version)`` with refcounting.

Anything that is not a columnar relation — plain row lists, CFDs,
indexes — falls back to ordinary pickling, so the backend accepts every
workload the process backend does.
"""

from __future__ import annotations

import weakref
from multiprocessing.shared_memory import SharedMemory
from typing import Any

from repro.columnar.shmcol import export_payload
from repro.columnar.store import column_store_of
from repro.runtime.executor import ProcessExecutor
from repro.runtime.ipc import ResidentRef
from repro.runtime.pool import WorkerCrashed, WorkerPool


class _Segment:
    __slots__ = ("shm", "refs")

    def __init__(self, shm: SharedMemory):
        self.shm = shm
        self.refs = 0


class _Resident:
    __slots__ = ("version", "store_ref", "seg_key", "generation")

    def __init__(self, version, store_ref, seg_key, generation):
        self.version = version
        self.store_ref = store_ref
        self.seg_key = seg_key
        self.generation = generation


class SharedMemoryExecutor(ProcessExecutor):
    """Warm worker processes with shared-memory-resident columnar fragments."""

    name = "shm"

    def __init__(self, workers: int | None = None, context: str | None = None):
        super().__init__(workers=workers, context=context)
        #: (worker slot, store uid) -> residency record.
        self._resident: dict[tuple[int, int], _Resident] = {}
        #: (store uid, store version) -> refcounted parent-owned segment.
        self._segments: dict[tuple[int, int], _Segment] = {}
        #: Residency keys whose store was garbage collected (flushed lazily:
        #: weakref callbacks must not talk to pipes).
        self._dead_keys: list[tuple[int, int]] = []
        self._segments_created = 0
        self._shm_bytes = 0

    # -- introspection (tests, benchmarks) ----------------------------------------------

    def active_segments(self) -> list[str]:
        """Names of the currently linked shared-memory segments."""
        return [segment.shm.name for segment in self._segments.values()]

    def ipc_stats(self) -> dict:
        stats = super().ipc_stats()
        stats["shm_segments_created"] = self._segments_created
        stats["shm_segments_active"] = len(self._segments)
        stats["shm_bytes"] = self._shm_bytes
        return stats

    # -- round hooks --------------------------------------------------------------------

    def _before_round(self, pool: WorkerPool) -> None:
        self._flush_dead(pool)

    def _prepare_args(self, pool: WorkerPool, slot: int, args: tuple) -> tuple:
        return self._rewrite(pool, slot, args)

    def _worker_lost(self, pool: WorkerPool, slot: int) -> None:
        """Forget everything resident in a dead worker (segments survive
        parent-side and are unlinked once no worker references them)."""
        for key in [k for k in self._resident if k[0] == slot]:
            record = self._resident.pop(key)
            self._unref_segment(record.seg_key)

    def _after_close(self) -> None:
        self._resident.clear()
        self._dead_keys.clear()
        for segment in self._segments.values():
            self._unlink(segment)
        self._segments.clear()

    # -- argument rewriting -------------------------------------------------------------

    def _rewrite(self, pool: WorkerPool, slot: int, obj: Any) -> Any:
        store = column_store_of(obj)
        if store is not None:
            return self._ensure_resident(pool, slot, obj, store)
        if type(obj) is tuple:
            return tuple(self._rewrite(pool, slot, item) for item in obj)
        if type(obj) is list:
            return [self._rewrite(pool, slot, item) for item in obj]
        if type(obj) is dict:
            return {k: self._rewrite(pool, slot, v) for k, v in obj.items()}
        return obj

    # -- residency protocol -------------------------------------------------------------

    def _ensure_resident(
        self, pool: WorkerPool, slot: int, relation: Any, store: Any
    ) -> ResidentRef:
        uid = store.uid
        key = (slot, uid)
        record = self._resident.get(key)
        generation = pool.ensure_worker(slot)
        if record is not None and (
            record.generation != generation or record.store_ref() is not store
        ):
            # Respawned worker, or a different (GC'd + uid-reused) store:
            # either way the worker-side resident is gone or wrong.
            self._resident.pop(key)
            self._unref_segment(record.seg_key)
            record = None
        if record is not None:
            if store.version != record.version:
                ops = store.journal_since(record.version)
                if ops is None:
                    # Journal unavailable (overflow): republish below.
                    self._resident.pop(key)
                    self._unref_segment(record.seg_key)
                    record = None
                else:
                    pool.send(slot, ("delta", uid, list(ops)), kind="delta")
                    record.version = store.version
                    self._trim_journal(uid, store)
            if record is not None:
                return ResidentRef(uid)
        store.enable_journal()
        version = store.version
        meta, buffers, total = export_payload(store, relation.schema)
        seg_key = (uid, version)
        segment = self._segments.get(seg_key)
        if segment is None and total > 0:
            try:
                shm = SharedMemory(create=True, size=total)
            except OSError:  # pragma: no cover - no /dev/shm: inline fallback
                segment = None
            else:
                offset = 0
                for buf in buffers:
                    shm.buf[offset : offset + len(buf)] = buf
                    offset += len(buf)
                segment = _Segment(shm)
                self._segments[seg_key] = segment
                self._segments_created += 1
                self._shm_bytes += total
        if segment is not None:
            meta["shm"] = segment.shm.name
            payload = None
            segment.refs += 1
        else:
            payload = buffers
            seg_key = None
        pool.send(slot, ("publish", uid, meta, payload), kind="publish")
        self._resident[key] = _Resident(
            version,
            weakref.ref(store, self._invalidator(key)),
            seg_key,
            generation,
        )
        self._trim_journal(uid, store)
        return ResidentRef(uid)

    def _invalidator(self, key: tuple[int, int]):
        dead = self._dead_keys
        return lambda _ref: dead.append(key)

    def _flush_dead(self, pool: WorkerPool) -> None:
        while self._dead_keys:
            key = self._dead_keys.pop()
            record = self._resident.pop(key, None)
            if record is None:
                continue
            slot, uid = key
            if record.generation == pool.generation(slot) and pool.is_alive(slot):
                try:
                    pool.send(slot, ("drop", uid), kind="drop")
                except WorkerCrashed:
                    self._worker_lost(pool, slot)
            self._unref_segment(record.seg_key)

    def _trim_journal(self, uid: int, store: Any) -> None:
        """Drop journal entries every replica of ``store`` has seen."""
        versions = [
            record.version for (_, u), record in self._resident.items() if u == uid
        ]
        if versions:
            store.trim_journal(min(versions))

    # -- segment ownership --------------------------------------------------------------

    def _unref_segment(self, seg_key: tuple[int, int] | None) -> None:
        if seg_key is None:
            return
        segment = self._segments.get(seg_key)
        if segment is None:
            return
        segment.refs -= 1
        if segment.refs <= 0:
            del self._segments[seg_key]
            self._unlink(segment)

    @staticmethod
    def _unlink(segment: _Segment) -> None:
        try:
            segment.shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        try:
            segment.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            # CPython < 3.12 calls shm_unlink *before* the tracker
            # unregister, so an already-gone file would strand a stale
            # tracker entry (warned about and re-unlinked at shutdown).
            from multiprocessing import resource_tracker

            try:
                resource_tracker.unregister(segment.shm._name, "shared_memory")
            except Exception:
                pass
