"""The site scheduler: rounds of independent per-site tasks between sync points.

Detectors partition each phase of their work into :class:`~repro.runtime.
executor.SiteTask` units (local violation checks, equivalence-class
maintenance, MD candidate matching, ...) and submit one *round* at a
time.  A round is a synchronisation barrier: the scheduler returns when
every task of the round has finished, the coordinator merges the results
in task order, and only then does the next phase start.  Network
shipments are charged by the coordinator during the merge, never from
inside a task — tasks stay pure and the shipment counters stay identical
across backends.

The scheduler also keeps the timing ledger: per-site busy seconds, and
per-round critical-path seconds (the wall-clock a perfectly parallel
backend would need).  Sessions surface this breakdown through
``DetectionReport``.

When a round runs inside an active trace span (see
:mod:`repro.obs.trace`), the scheduler rewraps each task so its span
context — trace id and parent span id — rides the existing picklable
task closure across the serial/threads/processes executors.  Each task
comes back with a ``site.task[i]`` span record (and, on worker
processes, a profiling delta) that the coordinator folds back into the
tracer; results are unwrapped before the timing ledger sees them, so the
ledger is identical traced or not.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs import profile as _prof
from repro.obs import trace as _trace
from repro.runtime.executor import Executor, SerialExecutor, SiteTask, TaskResult


@dataclass(frozen=True)
class SchedulerTimings:
    """A snapshot of the scheduler's timing ledger."""

    rounds: int = 0
    tasks: int = 0
    #: Sum of all task durations (total CPU-side work submitted).
    busy_seconds: float = 0.0
    #: Sum over rounds of the slowest task — the ideal parallel wall-clock.
    critical_seconds: float = 0.0
    #: Busy seconds attributed to each site id.
    seconds_by_site: dict[int, float] = field(default_factory=dict)
    #: Bytes that actually crossed a process boundary (0 for in-process
    #: backends) — tasks, fragment publishes, deltas and results alike.
    bytes_pickled: int = 0

    @property
    def parallelism(self) -> float:
        """How much faster than one core an ideal backend could run the rounds."""
        if self.critical_seconds <= 0.0:
            return 1.0
        return self.busy_seconds / self.critical_seconds


class SiteScheduler:
    """Runs rounds of site tasks on an executor and keeps the timing ledger."""

    def __init__(self, executor: Executor | None = None):
        self._executor = executor or SerialExecutor()
        self._rounds = 0
        self._tasks = 0
        self._busy = 0.0
        self._critical = 0.0
        self._by_site: dict[int, float] = {}
        self._bytes_pickled = 0
        # The executor's IPC counter is cumulative (and may be shared
        # across sessions): the ledger charges only the delta seen here.
        self._pickled_seen = self._executor.bytes_pickled

    @property
    def executor(self) -> Executor:
        return self._executor

    @property
    def backend(self) -> str:
        """The executor backend name ("serial", "threads", "processes")."""
        return self._executor.name

    # -- execution ----------------------------------------------------------------------

    def run(self, tasks: Sequence[SiteTask]) -> list[TaskResult]:
        """Run one round of tasks; results come back in submission order."""
        if not tasks:
            return []
        context = _trace.active()
        if context is not None and context[0].enabled:
            results = self._run_traced(tasks, context)
        else:
            results = self._executor.run(tasks)
        self._rounds += 1
        self._tasks += len(results)
        pickled = self._executor.bytes_pickled
        if pickled >= self._pickled_seen:
            self._bytes_pickled += pickled - self._pickled_seen
        self._pickled_seen = pickled
        slowest = 0.0
        for result in results:
            self._busy += result.seconds
            slowest = max(slowest, result.seconds)
            self._by_site[result.site] = self._by_site.get(result.site, 0.0) + result.seconds
        self._critical += slowest
        return results

    def _run_traced(
        self,
        tasks: Sequence[SiteTask],
        context: tuple["_trace.Tracer", "_trace.Span"],
    ) -> list[TaskResult]:
        """Run a round with span ids riding the picklable task closures."""
        tracer, parent = context
        profile_on = _prof.enabled
        wrapped = [
            SiteTask(
                site=task.site,
                fn=_trace.run_traced_task,
                args=(
                    parent.trace_id,
                    parent.span_id,
                    f"site.task[{index}]",
                    task.site,
                    task.label,
                    profile_on,
                    task.fn,
                    task.args,
                ),
                label=task.label,
            )
            for index, task in enumerate(tasks)
        ]
        results = self._executor.run(wrapped)
        unwrapped: list[TaskResult] = []
        for result in results:
            payload = result.value
            if isinstance(payload, _trace.TracedResult):
                tracer.ingest(payload.span)
                # Same-process tasks note straight into the shared
                # accumulator; merging their delta would double-count.
                if payload.profile and payload.span["attrs"]["pid"] != os.getpid():
                    _prof.merge(payload.profile)
                result = TaskResult(
                    site=result.site,
                    value=payload.value,
                    seconds=result.seconds,
                    label=result.label,
                )
            unwrapped.append(result)
        return unwrapped

    # -- timing ledger --------------------------------------------------------------------

    def timings(self) -> SchedulerTimings:
        """An immutable snapshot of the counters accumulated so far."""
        return SchedulerTimings(
            rounds=self._rounds,
            tasks=self._tasks,
            busy_seconds=self._busy,
            critical_seconds=self._critical,
            seconds_by_site=dict(self._by_site),
            bytes_pickled=self._bytes_pickled,
        )

    def reset_timings(self) -> None:
        """Zero the ledger (e.g. between measured batches)."""
        self._rounds = 0
        self._tasks = 0
        self._busy = 0.0
        self._critical = 0.0
        self._by_site.clear()
        self._bytes_pickled = 0
        self._pickled_seen = self._executor.bytes_pickled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SiteScheduler({self._executor!r}, {self._rounds} rounds)"
