"""Pluggable site executors: serial, threads, processes.

The detectors express their per-site local phases as *pure tasks* — a
top-level function plus picklable arguments, no shared state — and hand
them to an :class:`Executor`.  All backends return results **in task
submission order**, so a coordinator that merges results in order sees
exactly the serial outcome regardless of how the tasks were interleaved;
this is what makes the parity guarantee (identical violations, identical
shipment counts on every backend) checkable.

Backends:

* :class:`SerialExecutor` — runs tasks inline, in order.  The default;
  today's single-threaded semantics.
* :class:`ThreadExecutor` — a shared :class:`~concurrent.futures.
  ThreadPoolExecutor`.  Python's GIL serializes pure-Python task bodies,
  so this backend is mostly useful for validating the task decomposition
  and for tasks that release the GIL.
* :class:`ProcessExecutor` — a :class:`~concurrent.futures.
  ProcessPoolExecutor`.  True CPU parallelism; tasks and their results
  cross a pickle boundary, so it pays off when per-task compute
  dominates argument size (chunky per-site work).
"""

from __future__ import annotations

import concurrent.futures
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence


class ExecutorError(RuntimeError):
    """Raised on unknown backend names or invalid executor configurations."""


@dataclass(frozen=True)
class SiteTask:
    """One independent unit of per-site work.

    ``fn`` must be a module-level callable and ``args`` picklable when
    the task may run on the process backend.  ``site`` attributes the
    task's wall-clock to a site in the timing breakdown (use the
    coordinator's id, or any stable key, for work not owned by one
    site).
    """

    site: int
    fn: Callable[..., Any]
    args: tuple = ()
    label: str = ""


@dataclass(frozen=True)
class TaskResult:
    """The outcome of one :class:`SiteTask` (in submission order)."""

    site: int
    value: Any
    seconds: float
    label: str = ""


def _timed_call(fn: Callable[..., Any], args: tuple) -> tuple[Any, float]:
    """Run ``fn(*args)`` and measure it (module-level so processes can pickle it)."""
    start = time.perf_counter()
    value = fn(*args)
    return value, time.perf_counter() - start


class Executor(ABC):
    """Runs a round of independent site tasks; results keep task order."""

    #: Registry name of the backend ("serial", "threads", "processes").
    name: str = "serial"

    @abstractmethod
    def run(self, tasks: Sequence[SiteTask]) -> list[TaskResult]:
        """Execute every task and return results in submission order."""

    def close(self) -> None:
        """Release pooled workers (no-op for poolless backends)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run tasks inline on the calling thread — the default backend."""

    name = "serial"
    workers = 1

    def run(self, tasks: Sequence[SiteTask]) -> list[TaskResult]:
        results = []
        for task in tasks:
            value, seconds = _timed_call(task.fn, task.args)
            results.append(TaskResult(task.site, value, seconds, task.label))
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class _PooledExecutor(Executor):
    """Shared machinery for pool-backed backends (lazy pool creation)."""

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ExecutorError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: Any = None

    def _make_pool(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, tasks: Sequence[SiteTask]) -> list[TaskResult]:
        if not tasks:
            return []
        if self._pool is None:
            self._pool = self._make_pool()
        futures = [self._pool.submit(_timed_call, task.fn, task.args) for task in tasks]
        results = []
        try:
            for task, future in zip(tasks, futures):
                value, seconds = future.result()
                results.append(TaskResult(task.site, value, seconds, task.label))
        except BaseException:
            # Don't leave stray tasks of a failed round mutating detector
            # state behind the caller's back: cancel what hasn't started
            # and wait out what has before re-raising.
            for future in futures:
                future.cancel()
            concurrent.futures.wait(futures)
            raise
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadExecutor(_PooledExecutor):
    """Run tasks on a thread pool (concurrent, GIL-bound for pure Python)."""

    name = "threads"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PooledExecutor):
    """Run tasks on a process pool (true CPU parallelism, pickle boundary)."""

    name = "processes"

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)


def _make_serial() -> SerialExecutor:
    """The serial backend takes no options (a kwarg raises TypeError)."""
    return SerialExecutor()


#: Built-in backend factories, addressable by name from sessions and benchmarks.
EXECUTOR_BACKENDS: dict[str, Callable[..., Executor]] = {
    "serial": _make_serial,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}


def make_executor(backend: "str | Executor" = "serial", **options: Any) -> Executor:
    """Build an executor from a backend name, or pass an instance through.

    ``make_executor("threads", workers=8)`` builds a fresh pool;
    ``make_executor(my_executor)`` returns ``my_executor`` unchanged
    (options are rejected in that case — configure the instance
    directly).
    """
    if isinstance(backend, Executor):
        if options:
            raise ExecutorError(
                "options are only accepted with a backend name, not an "
                "executor instance"
            )
        return backend
    if not isinstance(backend, str):
        raise ExecutorError(
            f"backend must be a name or an Executor instance, not {type(backend).__name__}"
        )
    try:
        factory = EXECUTOR_BACKENDS[backend]
    except KeyError:
        known = ", ".join(sorted(EXECUTOR_BACKENDS))
        raise ExecutorError(f"unknown executor backend {backend!r}; known: {known}") from None
    try:
        return factory(**options)
    except TypeError as exc:
        raise ExecutorError(f"backend {backend!r} rejected options: {exc}") from None
