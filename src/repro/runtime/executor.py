"""Pluggable site executors: serial, threads, processes.

The detectors express their per-site local phases as *pure tasks* — a
top-level function plus picklable arguments, no shared state — and hand
them to an :class:`Executor`.  All backends return results **in task
submission order**, so a coordinator that merges results in order sees
exactly the serial outcome regardless of how the tasks were interleaved;
this is what makes the parity guarantee (identical violations, identical
shipment counts on every backend) checkable.

Backends:

* :class:`SerialExecutor` — runs tasks inline, in order.  The default;
  today's single-threaded semantics.
* :class:`ThreadExecutor` — a shared :class:`~concurrent.futures.
  ThreadPoolExecutor`.  Python's GIL serializes pure-Python task bodies,
  so this backend is mostly useful for validating the task decomposition
  and for tasks that release the GIL.
* :class:`ProcessExecutor` — a persistent
  :class:`~repro.runtime.pool.WorkerPool` of warm worker processes (one
  pool for the life of the executor, explicit fork/spawn context).  True
  CPU parallelism; tasks and their results cross an explicitly metered
  pickle boundary, so it pays off when per-task compute dominates
  argument size (chunky per-site work).
* :class:`~repro.runtime.shm.SharedMemoryExecutor` (``"shm"``) — the
  process backend plus zero-copy fragment residency: columnar relation
  arguments are published once into shared memory and kept warm in the
  workers, so later rounds ship only update deltas and results.
"""

from __future__ import annotations

import concurrent.futures
import time
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.distributed.serialization import IpcLedger
from repro.runtime.pool import WorkerCrashed, WorkerPool


class ExecutorError(RuntimeError):
    """Raised on unknown backend names or invalid executor configurations."""


@dataclass(frozen=True)
class SiteTask:
    """One independent unit of per-site work.

    ``fn`` must be a module-level callable and ``args`` picklable when
    the task may run on the process backend.  ``site`` attributes the
    task's wall-clock to a site in the timing breakdown (use the
    coordinator's id, or any stable key, for work not owned by one
    site).
    """

    site: int
    fn: Callable[..., Any]
    args: tuple = ()
    label: str = ""


@dataclass(frozen=True)
class TaskResult:
    """The outcome of one :class:`SiteTask` (in submission order)."""

    site: int
    value: Any
    seconds: float
    label: str = ""


def _timed_call(fn: Callable[..., Any], args: tuple) -> tuple[Any, float]:
    """Run ``fn(*args)`` and measure it (module-level so processes can pickle it)."""
    start = time.perf_counter()
    value = fn(*args)
    return value, time.perf_counter() - start


class Executor(ABC):
    """Runs a round of independent site tasks; results keep task order."""

    #: Registry name of the backend ("serial", "threads", "processes").
    name: str = "serial"

    @abstractmethod
    def run(self, tasks: Sequence[SiteTask]) -> list[TaskResult]:
        """Execute every task and return results in submission order."""

    def close(self) -> None:
        """Release pooled workers (no-op for poolless backends)."""

    @property
    def bytes_pickled(self) -> int:
        """Bytes that crossed a process boundary so far (0 in-process)."""
        return 0

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run tasks inline on the calling thread — the default backend."""

    name = "serial"
    workers = 1

    def run(self, tasks: Sequence[SiteTask]) -> list[TaskResult]:
        results = []
        for task in tasks:
            value, seconds = _timed_call(task.fn, task.args)
            results.append(TaskResult(task.site, value, seconds, task.label))
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class _PooledExecutor(Executor):
    """Shared machinery for pool-backed backends (lazy pool creation)."""

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ExecutorError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: Any = None

    def _make_pool(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, tasks: Sequence[SiteTask]) -> list[TaskResult]:
        if not tasks:
            return []
        if self._pool is None:
            self._pool = self._make_pool()
        futures = [self._pool.submit(_timed_call, task.fn, task.args) for task in tasks]
        results = []
        try:
            for task, future in zip(tasks, futures):
                value, seconds = future.result()
                results.append(TaskResult(task.site, value, seconds, task.label))
        except BaseException:
            # Don't leave stray tasks of a failed round mutating detector
            # state behind the caller's back: cancel what hasn't started
            # and wait out what has before re-raising.
            for future in futures:
                future.cancel()
            concurrent.futures.wait(futures)
            raise
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadExecutor(_PooledExecutor):
    """Run tasks on a thread pool (concurrent, GIL-bound for pure Python)."""

    name = "threads"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(Executor):
    """Run tasks on a persistent pool of warm worker processes.

    One :class:`~repro.runtime.pool.WorkerPool` lives for the whole
    executor (created lazily, re-created lazily after :meth:`close`), so
    repeated ``run()`` calls — one per detection round — stop paying
    process startup per wave.  Sites stick to workers, every message is
    explicitly pickled and counted (:attr:`bytes_pickled`), and the
    fork/spawn start method is an explicit choice (``context=``) instead
    of an interpreter default.

    A worker that dies mid-round fails that round with
    :class:`ExecutorError` (remaining workers are drained so the
    protocol stays in lockstep) and is respawned on the next round.
    """

    name = "processes"

    def __init__(self, workers: int | None = None, context: str | None = None):
        if workers is not None and workers < 1:
            raise ExecutorError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.context = context
        self._ledger = IpcLedger()
        self._pool: WorkerPool | None = None
        self._tracer: Any = None
        self._trace_parent: Any = None
        self._spans: dict[tuple[int, int], Any] = {}

    # -- pool lifecycle ---------------------------------------------------------------

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(
                self.workers,
                context=self.context,
                ledger=self._ledger,
                on_spawn=self._worker_started,
                on_exit=self._worker_stopped,
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._after_close()

    # -- metering / observability -------------------------------------------------------

    @property
    def bytes_pickled(self) -> int:
        """Total bytes pickled across the pipe, cumulative over pools."""
        return self._ledger.bytes_pickled

    def ipc_stats(self) -> dict:
        """The IPC ledger snapshot (messages and bytes per message kind)."""
        return self._ledger.snapshot()

    def attach_observability(self, tracer: Any, parent: Any = None) -> None:
        """Emit ``worker.lifetime`` spans under ``parent`` on ``tracer``."""
        self._tracer = tracer
        self._trace_parent = parent

    def _worker_started(self, slot: int, generation: int, pid: int) -> None:
        if self._tracer is None:
            return
        span = self._tracer.start_span(
            "worker.lifetime",
            parent=self._trace_parent,
            backend=self.name,
            worker=slot,
            generation=generation,
            pid=pid,
        )
        if span is not None:
            self._spans[(slot, generation)] = span

    def _worker_stopped(self, slot: int, generation: int) -> None:
        span = self._spans.pop((slot, generation), None)
        if span is not None and self._tracer is not None:
            self._tracer.end_span(span)

    # -- warm-state hooks (overridden by the shm backend) -------------------------------

    def _before_round(self, pool: WorkerPool) -> None:
        """Called once per round before any dispatch."""

    def _prepare_args(self, pool: WorkerPool, slot: int, args: tuple) -> tuple:
        """Rewrite task args for worker ``slot`` (publish residents, ...)."""
        return args

    def _worker_lost(self, pool: WorkerPool, slot: int) -> None:
        """Called when worker ``slot`` died mid-round."""

    def _after_close(self) -> None:
        """Called after the pool is torn down."""

    # -- the round protocol -------------------------------------------------------------

    def run(self, tasks: Sequence[SiteTask]) -> list[TaskResult]:
        if not tasks:
            return []
        pool = self._ensure_pool()
        self._before_round(pool)
        sent: dict[int, int] = {}
        crashes: list[WorkerCrashed] = []
        for index, task in enumerate(tasks):
            slot = pool.worker_for(task.site)
            try:
                args = self._prepare_args(pool, slot, task.args)
                pool.send(slot, ("task", index, task.fn, args), kind="task")
            except WorkerCrashed as crash:
                self._worker_lost(pool, slot)
                crashes.append(crash)
                break  # abort dispatch; drain what was already sent
            sent[slot] = sent.get(slot, 0) + 1
        replies: dict[int, tuple] = {}
        for slot, expected in sent.items():
            try:
                for _ in range(expected):
                    reply = pool.recv(slot)
                    replies[reply[1]] = reply
            except WorkerCrashed as crash:
                self._worker_lost(pool, slot)
                crashes.append(crash)
        if crashes:
            raise ExecutorError(
                "; ".join(str(crash) for crash in crashes)
            ) from crashes[0]
        for index in sorted(replies):
            reply = replies[index]
            if reply[0] == "err":
                exc = reply[2]
                if hasattr(exc, "add_note"):
                    exc.add_note(f"(raised in worker process)\n{reply[3]}")
                raise exc
        return [
            TaskResult(task.site, replies[index][3], replies[index][2], task.label)
            for index, task in enumerate(tasks)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


def _make_serial() -> SerialExecutor:
    """The serial backend takes no options (a kwarg raises TypeError)."""
    return SerialExecutor()


def _make_shm(**options: Any) -> Executor:
    """Lazy factory for the shared-memory backend (avoids an import cycle)."""
    from repro.runtime.shm import SharedMemoryExecutor

    return SharedMemoryExecutor(**options)


#: Built-in backend factories, addressable by name from sessions and benchmarks.
EXECUTOR_BACKENDS: dict[str, Callable[..., Executor]] = {
    "serial": _make_serial,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
    "shm": _make_shm,
}


def make_executor(backend: "str | Executor" = "serial", **options: Any) -> Executor:
    """Build an executor from a backend name, or pass an instance through.

    ``make_executor("threads", workers=8)`` builds a fresh pool;
    ``make_executor(my_executor)`` returns ``my_executor`` unchanged
    (options are rejected in that case — configure the instance
    directly).
    """
    if isinstance(backend, Executor):
        if options:
            raise ExecutorError(
                "options are only accepted with a backend name, not an "
                "executor instance"
            )
        return backend
    if not isinstance(backend, str):
        raise ExecutorError(
            f"backend must be a name or an Executor instance, not {type(backend).__name__}"
        )
    try:
        factory = EXECUTOR_BACKENDS[backend]
    except KeyError:
        known = ", ".join(sorted(EXECUTOR_BACKENDS))
        raise ExecutorError(f"unknown executor backend {backend!r}; known: {known}") from None
    try:
        return factory(**options)
    except TypeError as exc:
        raise ExecutorError(f"backend {backend!r} rejected options: {exc}") from None
