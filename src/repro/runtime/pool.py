"""A persistent pool of warm worker processes with metered pipes.

Unlike ``concurrent.futures.ProcessPoolExecutor`` — which this repo's
process backend previously re-created per ``run()`` call, paying pool
setup per detection wave — the :class:`WorkerPool` keeps its daemon
workers alive for the life of the executor and speaks a self-pickled
protocol over plain pipes.  Pickling explicitly (``pickle.dumps`` +
``send_bytes``) is what makes the IPC cost *measurable*: every message
in either direction is counted in an
:class:`~repro.distributed.serialization.IpcLedger`.

Sites stick to workers (round-robin on first sight), which is what lets
a warm backend keep per-site fragments resident across rounds.  A dead
worker is detected on the next send/recv, reported as
:class:`WorkerCrashed`, and replaced lazily with a bumped *generation*
so callers can invalidate whatever state the lost worker held.

The start method is explicit: ``fork`` where available (cheap, shares
the parent image), ``spawn`` otherwise — callers can force either.  The
worker entrypoint lives in the spawn-safe :mod:`repro.runtime.ipc`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Any, Callable

from repro.distributed.serialization import IpcLedger
from repro.runtime.ipc import worker_main


class WorkerCrashed(RuntimeError):
    """A worker process died mid-protocol (detected on send/recv)."""

    def __init__(self, worker: int, detail: str = ""):
        super().__init__(
            f"worker {worker} died unexpectedly" + (f": {detail}" if detail else "")
        )
        self.worker = worker


class _Worker:
    __slots__ = ("process", "connection", "generation")

    def __init__(self, process, connection, generation: int):
        self.process = process
        self.connection = connection
        self.generation = generation


class WorkerPool:
    """Long-lived worker processes, explicit pickling, sticky site affinity."""

    def __init__(
        self,
        workers: int | None = None,
        context: str | None = None,
        ledger: IpcLedger | None = None,
        on_spawn: Callable[[int, int, int], None] | None = None,
        on_exit: Callable[[int, int], None] | None = None,
    ):
        self._size = workers if workers is not None else (os.cpu_count() or 1)
        if context is None:
            methods = multiprocessing.get_all_start_methods()
            context = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(context)
        self._context_name = context
        self.ledger = ledger if ledger is not None else IpcLedger()
        self._on_spawn = on_spawn
        self._on_exit = on_exit
        self._workers: dict[int, _Worker] = {}
        self._generations: dict[int, int] = {}
        self._affinity: dict[Any, int] = {}
        self._next_slot = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def context_name(self) -> str:
        return self._context_name

    # -- placement ------------------------------------------------------------------

    def worker_for(self, site: Any) -> int:
        """The sticky worker slot for ``site`` (round-robin on first sight)."""
        slot = self._affinity.get(site)
        if slot is None:
            slot = self._next_slot % self._size
            self._next_slot += 1
            self._affinity[site] = slot
        return slot

    def generation(self, slot: int) -> int:
        """How many times slot ``slot`` has been (re)spawned so far."""
        return self._generations.get(slot, 0)

    def is_alive(self, slot: int) -> bool:
        worker = self._workers.get(slot)
        return worker is not None and worker.process.is_alive()

    def ensure_worker(self, slot: int) -> int:
        """Spawn slot ``slot`` if needed and return its live generation."""
        return self._ensure(slot).generation

    # -- lifecycle ------------------------------------------------------------------

    def _ensure(self, slot: int) -> _Worker:
        worker = self._workers.get(slot)
        if worker is not None:
            if worker.process.is_alive():
                return worker
            self._discard(slot, worker)
        generation = self._generations.get(slot, 0) + 1
        self._generations[slot] = generation
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=worker_main,
            args=(child_conn,),
            name=f"repro-worker-{slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn, generation)
        self._workers[slot] = worker
        if self._on_spawn is not None:
            self._on_spawn(slot, generation, process.pid)
        return worker

    def _discard(self, slot: int, worker: _Worker) -> None:
        try:
            worker.connection.close()
        except OSError:  # pragma: no cover - already gone
            pass
        worker.process.join(timeout=0.2)
        del self._workers[slot]
        if self._on_exit is not None:
            self._on_exit(slot, worker.generation)

    # -- metered protocol --------------------------------------------------------------

    def send(self, slot: int, message: Any, kind: str) -> None:
        """Pickle, count and send one message to worker ``slot``."""
        worker = self._ensure(slot)
        blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            worker.connection.send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            self._discard(slot, worker)
            raise WorkerCrashed(slot, str(exc)) from exc
        self.ledger.count(kind, len(blob))

    def recv(self, slot: int) -> Any:
        """Receive, count and unpickle one reply from worker ``slot``."""
        worker = self._workers.get(slot)
        if worker is None:
            raise WorkerCrashed(slot, "no live worker to receive from")
        try:
            blob = worker.connection.recv_bytes()
        except (EOFError, OSError) as exc:
            self._discard(slot, worker)
            raise WorkerCrashed(slot, str(exc)) from exc
        self.ledger.count("result", len(blob))
        return pickle.loads(blob)

    def close(self) -> None:
        """Stop every worker (graceful stop, then terminate stragglers)."""
        for slot, worker in list(self._workers.items()):
            try:
                worker.connection.send_bytes(
                    pickle.dumps(("stop",), protocol=pickle.HIGHEST_PROTOCOL)
                )
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.connection.close()
            except OSError:  # pragma: no cover - already gone
                pass
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if self._on_exit is not None:
                self._on_exit(slot, worker.generation)
        self._workers.clear()
        self._affinity.clear()
        self._next_slot = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerPool(size={self._size}, context={self._context_name!r}, "
            f"live={len(self._workers)})"
        )
