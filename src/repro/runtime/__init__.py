"""The parallel execution runtime: pluggable site executors under the engine.

``engine → scheduler → executor → sites``: the session builder picks a
backend (``repro.session(...).executor("threads", workers=8)``), the
:class:`SiteScheduler` partitions each detector phase into independent
per-site tasks, and the chosen :class:`Executor` runs every round
serially, on a thread pool or on a process pool.  Every backend yields
the identical violation set and identical shipment counts — the
test-suite's parity matrix asserts it for all registered strategies.
"""

from repro.runtime.executor import (
    EXECUTOR_BACKENDS,
    Executor,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    SiteTask,
    TaskResult,
    ThreadExecutor,
    make_executor,
)
from repro.runtime.scheduler import SchedulerTimings, SiteScheduler

__all__ = [
    "EXECUTOR_BACKENDS",
    "Executor",
    "ExecutorError",
    "ProcessExecutor",
    "SchedulerTimings",
    "SerialExecutor",
    "SiteScheduler",
    "SiteTask",
    "TaskResult",
    "ThreadExecutor",
    "make_executor",
]
