"""Single-update incremental detection for one variable CFD.

These are the algorithms ``incVIns`` and ``incVDel`` of Fig. 4,
expressed over the :class:`~repro.indexes.idx.CFDIndex` group index
(``set(t[X])`` and ``[t]_{X ∪ {B}}`` in the paper's notation).  They
return the per-CFD change to the violation set and maintain the index in
the same pass; both take constant time per update.

The routines are pure index/tuple logic: communication (which eqids are
shipped to compute the IDX key) is accounted for separately by the HEV
plan in :mod:`repro.vertical.incver`, because the number of eqids
shipped does not depend on the values involved (Section 5).
"""

from __future__ import annotations

from typing import Any

from repro.core.tuples import Tuple
from repro.indexes.idx import CFDIndex


def incremental_insert(index: CFDIndex, t: Tuple) -> set[Any]:
    """``incVIns``: tids that become violations of the CFD when ``t`` is inserted.

    Case analysis on ``set(t[X])`` before the insertion (Fig. 4):

    * more than one RHS class — every existing member of the group is
      already a violation, so ``t`` is the only new one;
    * exactly one class holding a different RHS value — ``t`` and the
      whole class become violations;
    * exactly one class holding the same RHS value, or no class at all —
      nothing changes.
    """
    cfd = index.cfd
    if not index.applies_to(t):
        return set()
    key = index.lhs_key(t)
    classes = index.classes(key)
    added: set[Any] = set()
    if len(classes) > 1:
        added.add(t.tid)
    elif len(classes) == 1:
        ((existing_value, existing_tids),) = classes.items()
        if existing_value != t[cfd.rhs]:
            added.add(t.tid)
            added.update(existing_tids)
    index.add_tuple(t)
    return added


def incremental_delete(index: CFDIndex, t: Tuple) -> set[Any]:
    """``incVDel``: tids that stop being violations of the CFD when ``t`` is deleted.

    Case analysis on ``[t]_{X ∪ {B}}`` and ``set(t[X])`` before the
    deletion (Fig. 4):

    * ``t``'s RHS class keeps other members — only ``t`` itself leaves
      the violation set (and only if the group had at least two classes,
      otherwise nobody was a violation);
    * ``t`` was alone in its class and the group had more than two
      classes — only ``t`` leaves;
    * ``t`` was alone in its class and the group had exactly two classes
      — ``t`` and the entire remaining class leave;
    * otherwise nothing was a violation and nothing changes.
    """
    cfd = index.cfd
    if not index.applies_to(t):
        return set()
    key = index.lhs_key(t)
    classes = index.classes(key)
    own_class = classes.get(t[cfd.rhs], set())
    if t.tid not in own_class:
        raise ValueError(
            f"tuple {t.tid!r} is not indexed for CFD {cfd.name!r}; cannot delete"
        )
    removed: set[Any] = set()
    n_classes = len(classes)
    if len(own_class) > 1:
        if n_classes > 1:
            removed.add(t.tid)
    else:
        if n_classes > 2:
            removed.add(t.tid)
        elif n_classes == 2:
            removed.add(t.tid)
            for value, tids in classes.items():
                if value != t[cfd.rhs]:
                    removed.update(tids)
    index.remove_tuple(t)
    return removed
