"""``batVer``: the batch baseline for vertical partitions.

Following the heuristic of Fan et al. (ICDE 2010) that the paper
compares against, the batch detector recomputes ``V(Sigma, D)`` from
scratch: for every CFD it ships the relevant attribute columns (tid plus
the CFD's attributes stored at each site) to a coordinator site and
checks the CFD there.  Constant CFDs only ship the partial tuples whose
local projection matches the pattern; locally checkable variable CFDs
ship nothing.  Both the work and the shipment are proportional to |D|
(per CFD), which is exactly the behaviour the incremental algorithm
avoids.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.cfd import CFD, UNNAMED
from repro.core.detector import CentralizedDetector
from repro.core.violations import ViolationSet
from repro.distributed.cluster import Cluster
from repro.distributed.message import MessageKind
from repro.distributed.serialization import estimate_tuple_bytes


class VerticalBatchDetector:
    """Recompute ``V(Sigma, D)`` over a vertically partitioned cluster."""

    def __init__(self, cluster: Cluster, cfds: Iterable[CFD]):
        if not cluster.is_vertical():
            raise ValueError("VerticalBatchDetector requires a vertical cluster")
        self._cluster = cluster
        self._network = cluster.network
        self._partitioner = cluster.vertical_partitioner
        self._cfds = list(cfds)
        for cfd in self._cfds:
            cfd.validate_against(self._partitioner.schema)

    # -- shipment accounting -----------------------------------------------------------

    def _coordinator_for(self, cfd: CFD) -> int:
        """The site already holding the most attributes of the CFD."""
        best_site = None
        best_cover = -1
        wanted = set(cfd.attributes)
        for frag in self._partitioner.fragments:
            cover = len(wanted & set(frag.attributes))
            if cover > best_cover:
                best_cover = cover
                best_site = frag.site
        assert best_site is not None
        return best_site

    def _ship_variable_cfd(self, cfd: CFD, coordinator: int) -> None:
        """Ship the columns a general variable CFD needs to its coordinator."""
        wanted = set(cfd.attributes)
        already_there = set(
            self._partitioner.fragment_for_site(coordinator).attributes
        )
        missing = wanted - already_there
        if not missing:
            return
        for frag in self._partitioner.fragments:
            if frag.site == coordinator:
                continue
            supplied = [a for a in frag.attributes if a in missing]
            if not supplied:
                continue
            fragment = self._cluster.site(frag.site).fragment
            for t in fragment:
                self._network.send(
                    frag.site,
                    coordinator,
                    MessageKind.PARTIAL_TUPLE,
                    {"tid": t.tid},
                    estimate_tuple_bytes(t, supplied),
                    units=1,
                    tag=cfd.name,
                )
            missing -= set(supplied)

    def _ship_constant_cfd(self, cfd: CFD, coordinator: int) -> None:
        """Ship locally pattern-matching partial tuples for a constant CFD."""
        pattern = cfd.pattern
        constants = {
            a: pattern.entry(a) for a in cfd.lhs if pattern.entry(a) is not UNNAMED
        }
        for frag in self._partitioner.fragments:
            if frag.site == coordinator:
                continue
            relevant = [a for a in frag.attributes if a in cfd.lhs]
            if not relevant:
                continue
            fragment = self._cluster.site(frag.site).fragment
            for t in fragment:
                if all(t[a] == constants[a] for a in relevant if a in constants):
                    self._network.send(
                        frag.site,
                        coordinator,
                        MessageKind.PARTIAL_TUPLE,
                        {"tid": t.tid},
                        estimate_tuple_bytes(t, relevant),
                        units=1,
                        tag=cfd.name,
                    )

    # -- detection ------------------------------------------------------------------------

    def detect(self) -> ViolationSet:
        """Compute ``V(Sigma, D)`` from scratch, charging shipments to the network."""
        snapshot = self._cluster.reconstruct()
        violations = ViolationSet()
        for cfd in self._cfds:
            if cfd.is_constant():
                coordinator = self._partitioner.home_site(cfd.rhs)
                self._ship_constant_cfd(cfd, coordinator)
            elif self._partitioner.is_local(cfd.attributes) is None:
                coordinator = self._coordinator_for(cfd)
                self._ship_variable_cfd(cfd, coordinator)
            for tid in CentralizedDetector.violations_of(cfd, snapshot):
                violations.add(tid, cfd.name)
        return violations
