"""``batVer``: the batch baseline for vertical partitions.

Following the heuristic of Fan et al. (ICDE 2010) that the paper
compares against, the batch detector recomputes ``V(Sigma, D)`` from
scratch: for every CFD it ships the relevant attribute columns (tid plus
the CFD's attributes stored at each site) to a coordinator site and
checks the CFD there.  Constant CFDs only ship the partial tuples whose
local projection matches the pattern; locally checkable variable CFDs
ship nothing.  Both the work and the shipment are proportional to |D|
(per CFD), which is exactly the behaviour the incremental algorithm
avoids.

Execution is split into two scheduler rounds: one pure task per site
plans the shipments the site would make (:func:`_site_ship_task`), then
one pure task per CFD checks it against the reconstructed snapshot
(:func:`_check_cfd_task`).  The coordinator charges the planned
shipments to the network between the rounds, so every executor backend
yields the identical violation set and identical shipment counts.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.cfd import CFD, UNNAMED
from repro.core.detector import CentralizedDetector
from repro.core.tuples import Tuple
from repro.core.violations import ViolationSet
from repro.distributed.cluster import Cluster
from repro.distributed.message import MessageKind
from repro.distributed.serialization import estimate_tuple_bytes
from repro.runtime.executor import SiteTask


def _site_ship_task(
    constant_specs: list[tuple[str, list[str], dict[str, Any]]],
    variable_specs: list[tuple[str, list[str]]],
    tuples: "list[Tuple] | Any",
) -> dict[str, list[tuple[Any, int]]]:
    """Plan one site's shipments for every CFD (pure, picklable).

    ``constant_specs`` carries ``(cfd_name, relevant_lhs_attrs,
    constants)`` for each constant CFD the site holds LHS attributes of:
    tuples whose local projection matches the pattern ship their
    ``relevant`` attributes.  ``variable_specs`` carries ``(cfd_name,
    supplied_attrs)`` for each general variable CFD this site supplies
    columns to: every tuple ships its ``supplied`` projection.

    ``tuples`` is the site's fragment: a tuple list for row storage, or
    the fragment relation itself when column-backed (the projection
    sweeps then run over encoded columns with cached per-code sizes).
    """
    from repro.columnar.store import column_store_of
    from repro.sqlstore.store import sql_store_of

    shipments: dict[str, list[tuple[Any, int]]] = {}
    store = column_store_of(tuples)
    if store is not None:
        from repro.columnar import kernels

        for cfd_name, relevant, constants in constant_specs:
            shipments.setdefault(cfd_name, []).extend(
                kernels.constant_ship_scan(store, relevant, constants)
            )
        for cfd_name, supplied in variable_specs:
            shipments.setdefault(cfd_name, []).extend(
                kernels.project_ship_scan(store, supplied)
            )
        return shipments
    sql_store = sql_store_of(tuples)
    if sql_store is not None:
        # SQL-backed fragments push the match filter and projection
        # down; only (tid, projected values) rows come back to price.
        from repro.sqlstore import kernels as sql_kernels

        for cfd_name, relevant, constants in constant_specs:
            shipments.setdefault(cfd_name, []).extend(
                sql_kernels.constant_ship_scan(sql_store, relevant, constants)
            )
        for cfd_name, supplied in variable_specs:
            shipments.setdefault(cfd_name, []).extend(
                sql_kernels.project_ship_scan(sql_store, supplied)
            )
        return shipments
    for cfd_name, relevant, constants in constant_specs:
        ship = shipments.setdefault(cfd_name, [])
        for t in tuples:
            if all(t[a] == constants[a] for a in relevant if a in constants):
                ship.append((t.tid, estimate_tuple_bytes(t, relevant)))
    for cfd_name, supplied in variable_specs:
        ship = shipments.setdefault(cfd_name, [])
        for t in tuples:
            ship.append((t.tid, estimate_tuple_bytes(t, supplied)))
    return shipments


def _check_cfds_task(
    cfds: list[CFD], tuples: "list[Tuple] | Any", fusion: bool = True
) -> list[set[Any]]:
    """``V(phi, D)`` for each CFD checked at one coordinator site (pure).

    Bundling a site's CFDs into one task ships the snapshot across the
    process backend's pickle boundary once per site, not once per CFD.
    With fusion (the default) the bundled CFDs are further compiled into
    same-LHS groups and validated one pass per group; results stay
    violation-identical to the per-rule loop on every backend.
    """
    if fusion and len(cfds) > 1:
        from repro.rulefuse import fused_violations

        return fused_violations(cfds, tuples)
    return [CentralizedDetector.violations_of(cfd, tuples) for cfd in cfds]


class VerticalBatchDetector:
    """Recompute ``V(Sigma, D)`` over a vertically partitioned cluster."""

    def __init__(self, cluster: Cluster, cfds: Iterable[CFD], fusion: bool = True):
        if not cluster.is_vertical():
            raise ValueError("VerticalBatchDetector requires a vertical cluster")
        self._cluster = cluster
        self._network = cluster.network
        self._partitioner = cluster.vertical_partitioner
        self._cfds = list(cfds)
        self._fusion = fusion
        for cfd in self._cfds:
            cfd.validate_against(self._partitioner.schema)

    # -- shipment planning -----------------------------------------------------------

    def _coordinator_for(self, cfd: CFD) -> int:
        """The site already holding the most attributes of the CFD."""
        best_site = None
        best_cover = -1
        wanted = set(cfd.attributes)
        for frag in self._partitioner.fragments:
            cover = len(wanted & set(frag.attributes))
            if cover > best_cover:
                best_cover = cover
                best_site = frag.site
        assert best_site is not None
        return best_site

    def _variable_supplies(self, cfd: CFD, coordinator: int) -> dict[int, list[str]]:
        """Which columns each site ships to a general variable CFD's coordinator."""
        wanted = set(cfd.attributes)
        missing = wanted - set(self._partitioner.fragment_for_site(coordinator).attributes)
        supplies: dict[int, list[str]] = {}
        for frag in self._partitioner.fragments:
            if frag.site == coordinator or not missing:
                continue
            supplied = [a for a in frag.attributes if a in missing]
            if supplied:
                supplies[frag.site] = supplied
                missing -= set(supplied)
        return supplies

    def _constant_relevant(self, cfd: CFD, coordinator: int) -> dict[int, list[str]]:
        """Which LHS attributes each non-coordinator site checks and ships."""
        relevant: dict[int, list[str]] = {}
        for frag in self._partitioner.fragments:
            if frag.site == coordinator:
                continue
            attrs = [a for a in frag.attributes if a in cfd.lhs]
            if attrs:
                relevant[frag.site] = attrs
        return relevant

    # -- detection ------------------------------------------------------------------------

    def detect(self) -> ViolationSet:
        """Compute ``V(Sigma, D)`` from scratch, charging shipments to the network."""
        from repro.columnar.store import column_store_of
        from repro.sqlstore.store import sql_store_of

        reconstructed = self._cluster.reconstruct()
        snapshot: Any = (
            reconstructed
            if column_store_of(reconstructed) is not None
            or sql_store_of(reconstructed) is not None
            else list(reconstructed)
        )
        violations = ViolationSet()

        # Plan, per site, the per-CFD shipments (metadata only; the task scans
        # the site's own partial tuples).
        constant_specs: dict[int, list[tuple[str, list[str], dict[str, Any]]]] = {}
        variable_specs: dict[int, list[tuple[str, list[str]]]] = {}
        coordinators: dict[str, int] = {}
        for cfd in self._cfds:
            if cfd.is_constant():
                coordinator = self._partitioner.home_site(cfd.rhs)
                coordinators[cfd.name] = coordinator
                pattern = cfd.pattern
                constants = {
                    a: pattern.entry(a)
                    for a in cfd.lhs
                    if pattern.entry(a) is not UNNAMED
                }
                for site, relevant in self._constant_relevant(cfd, coordinator).items():
                    constant_specs.setdefault(site, []).append(
                        (cfd.name, relevant, constants)
                    )
            elif self._partitioner.is_local(cfd.attributes) is None:
                coordinator = self._coordinator_for(cfd)
                coordinators[cfd.name] = coordinator
                for site, supplied in self._variable_supplies(cfd, coordinator).items():
                    variable_specs.setdefault(site, []).append((cfd.name, supplied))

        ship_tasks = [
            SiteTask(
                site.site_id,
                _site_ship_task,
                (
                    constant_specs.get(site.site_id, []),
                    variable_specs.get(site.site_id, []),
                    site.fragment
                    if column_store_of(site.fragment) is not None
                    or sql_store_of(site.fragment) is not None
                    else list(site.fragment),
                ),
                label="batVer:ship",
            )
            for site in self._cluster.sites()
            if site.site_id in constant_specs or site.site_id in variable_specs
        ]
        planned: dict[int, dict[str, list[tuple[Any, int]]]] = {
            result.site: result.value
            for result in self._cluster.scheduler.run(ship_tasks)
        }

        # Charge the shipments in the serial order (per CFD, per site, per
        # tuple), then check every CFD against the snapshot in parallel.
        for cfd in self._cfds:
            coordinator = coordinators.get(cfd.name)
            if coordinator is None:
                continue
            for frag in self._partitioner.fragments:
                for tid, nbytes in planned.get(frag.site, {}).get(cfd.name, []):
                    self._network.send(
                        frag.site,
                        coordinator,
                        MessageKind.PARTIAL_TUPLE,
                        {"tid": tid},
                        nbytes,
                        units=1,
                        tag=cfd.name,
                    )

        by_check_site: dict[int, list[CFD]] = {}
        for cfd in self._cfds:
            site = coordinators.get(cfd.name, self._partitioner.home_site(cfd.rhs))
            by_check_site.setdefault(site, []).append(cfd)
        check_tasks = [
            SiteTask(
                site,
                _check_cfds_task,
                (cfds, snapshot, self._fusion),
                label="batVer:check",
            )
            for site, cfds in sorted(by_check_site.items())
        ]
        for (_site, cfds), result in zip(
            sorted(by_check_site.items()), self._cluster.scheduler.run(check_tasks)
        ):
            for cfd, tids in zip(cfds, result.value):
                for tid in tids:
                    violations.add(tid, cfd.name)
        return violations
