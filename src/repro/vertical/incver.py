"""``incVer``: incremental detection for vertical partitions (Fig. 5).

Given a vertically partitioned database hosted on a
:class:`~repro.distributed.cluster.Cluster`, a set of CFDs and the
current violations, :class:`VerticalIncrementalDetector` maintains the
violation set under batch updates.  Per CFD it distinguishes the three
cases of the paper:

1. *Constant CFDs* — violated by single tuples; each site ships the
   locally pattern-matching projection of the updated tuple to a
   coordinator, which checks the pattern on the RHS.
2. *Locally checkable variable CFDs* — all attributes of the CFD live in
   one fragment; detection happens at that site with no shipment.
3. *General variable CFDs* — the IDX lives at the site chosen by the HEV
   plan; processing an update ships at most ``|X|`` eqids (shared HEVs
   ship once per update), after which ``incVIns`` / ``incVDel`` run in
   constant time.

The communication and computational costs are therefore
``O(|delta-D| + |delta-V|)``, independent of ``|D|`` (Proposition 6).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.cfd import CFD, UNNAMED
from repro.core.detector import CentralizedDetector
from repro.core.updates import Update, UpdateBatch
from repro.core.violations import ViolationDelta, ViolationSet
from repro.distributed.cluster import Cluster
from repro.distributed.message import MessageKind
from repro.distributed.serialization import estimate_tuple_bytes
from repro.indexes.hev import HEVPlan, ShipmentCache
from repro.indexes.idx import CFDIndex
from repro.indexes.planner import HEVPlanner, naive_chain_plan
from repro.runtime.executor import SiteTask


def _variable_cfd_task(
    index: CFDIndex, updates: list[Update]
) -> tuple[CFDIndex, list[tuple[str, Any]]]:
    """Maintain one variable CFD's IDX over a whole batch (pure, picklable).

    Runs ``incVIns`` / ``incVDel`` per update in batch order and returns
    the (possibly copied, on the process backend) index together with
    the ordered mark/unmark operations ``("+"/"-", tid)``.  Each
    variable CFD owns its index and its slice of the violation marks, so
    the CFDs of a batch are independent tasks.
    """
    from repro.vertical.single import incremental_delete, incremental_insert

    ops: list[tuple[str, Any]] = []
    for update in updates:
        if update.is_insert():
            for tid in incremental_insert(index, update.tuple):
                ops.append(("+", tid))
        elif index.applies_to(update.tuple):
            for tid in incremental_delete(index, update.tuple):
                ops.append(("-", tid))
    return index, ops


class VerticalIncrementalDetector:
    """Incremental CFD violation detection over a vertically partitioned cluster."""

    def __init__(
        self,
        cluster: Cluster,
        cfds: Iterable[CFD],
        plan: HEVPlan | None = None,
        planner: HEVPlanner | None = None,
        violations: ViolationSet | None = None,
        fusion: bool = True,
    ):
        if not cluster.is_vertical():
            raise ValueError("VerticalIncrementalDetector requires a vertical cluster")
        self._cluster = cluster
        self._network = cluster.network
        self._partitioner = cluster.vertical_partitioner
        self._cfds = list(cfds)
        self._fusion = fusion
        schema = self._partitioner.schema
        for cfd in self._cfds:
            cfd.validate_against(schema)

        self._classify()

        if plan is not None:
            self._plan = plan
        elif planner is not None:
            self._plan = planner.plan(self._cfds)
        else:
            self._plan = naive_chain_plan(self._cfds, self._partitioner)

        # Setup phase: build the IDX indices and the initial violation set from
        # the current database.  This is a one-time cost (the indices exist
        # before updates start arriving) and is not charged to the network.
        snapshot = cluster.reconstruct()
        self._indices: dict[str, CFDIndex] = {}
        indexes: list[CFDIndex] = []
        for cfd, _site in self._local_cfds:
            index = CFDIndex(cfd)
            self._indices[cfd.name] = index
            indexes.append(index)
        for cfd in self._general_cfds:
            index = CFDIndex(cfd)
            self._indices[cfd.name] = index
            indexes.append(index)
        if self._fusion:
            # One sweep of the snapshot per fused LHS group builds every
            # same-LHS index at once.
            from repro.rulefuse import build_indexes

            build_indexes(indexes, snapshot)
        else:
            for index in indexes:
                index.build_from(snapshot)

        if violations is not None:
            self._violations = violations.copy()
        else:
            self._violations = CentralizedDetector(
                self._cfds, fusion=self._fusion
            ).detect(snapshot)

        self._constant_coordinator = {
            cfd.name: self._partitioner.home_site(cfd.rhs) for cfd in self._constant_cfds
        }

    def _classify(self) -> None:
        """Split the CFDs into the three cases of Fig. 5 for the current layout."""
        self._constant_cfds = []
        self._local_cfds = []
        self._general_cfds = []
        for cfd in self._cfds:
            if cfd.is_constant():
                self._constant_cfds.append(cfd)
                continue
            local_site = self._partitioner.is_local(cfd.attributes)
            if local_site is not None:
                self._local_cfds.append((cfd, local_site))
            else:
                self._general_cfds.append(cfd)

    def rehome(
        self,
        cluster: Cluster,
        plan: HEVPlan | None = None,
        planner: HEVPlanner | None = None,
    ) -> None:
        """Warm re-homing after an in-place cluster migration.

        The IDX indices are *logical* — grouped by LHS value over the
        whole database — so moving columns between sites never touches
        their contents, and the maintained violation set stays valid
        because migration does not change the logical database.  Only
        the placement metadata depends on the layout: the local/general
        classification, the HEV plan and the constant-CFD coordinators
        are recomputed against the new partitioner; nothing is
        re-detected and nothing ships.
        """
        if not cluster.is_vertical():
            raise ValueError("rehome requires a vertical cluster")
        self._cluster = cluster
        self._network = cluster.network
        self._partitioner = cluster.vertical_partitioner
        self._classify()
        if plan is not None:
            self._plan = plan
        elif planner is not None:
            self._plan = planner.plan(self._cfds)
        else:
            self._plan = naive_chain_plan(self._cfds, self._partitioner)
        self._constant_coordinator = {
            cfd.name: self._partitioner.home_site(cfd.rhs) for cfd in self._constant_cfds
        }

    # -- public state ----------------------------------------------------------------

    @property
    def violations(self) -> ViolationSet:
        """The current violation set ``V(Sigma, D)`` maintained by the detector."""
        return self._violations

    @property
    def plan(self) -> HEVPlan:
        """The HEV plan in use (naive chains unless a planner/plan was supplied)."""
        return self._plan

    @property
    def cfds(self) -> list[CFD]:
        return list(self._cfds)

    def index_for(self, cfd_name: str) -> CFDIndex:
        """The IDX of a variable CFD (exposed for tests and diagnostics)."""
        return self._indices[cfd_name]

    # -- mark helpers ------------------------------------------------------------------

    def _mark(self, delta: ViolationDelta, tid: Any, cfd_name: str) -> None:
        if self._violations.add(tid, cfd_name):
            delta.add(tid, cfd_name)

    def _unmark(self, delta: ViolationDelta, tid: Any, cfd_name: str) -> None:
        if self._violations.remove(tid, cfd_name):
            delta.remove(tid, cfd_name)

    # -- fragment maintenance ------------------------------------------------------------

    def _maintain_fragments(self, update: Update) -> None:
        """Apply one update to every site's fragment (the delta is delivered
        to the owning sites by assumption; this is not data shipment)."""
        for frag in self._partitioner.fragments:
            site = self._cluster.site(frag.site)
            if update.is_insert():
                site.fragment.insert(update.tuple.project(frag.attributes))
            else:
                site.fragment.discard(update.tid)

    # -- per-CFD processing ----------------------------------------------------------------

    def _process_constant(self, cfd: CFD, update: Update, delta: ViolationDelta) -> None:
        t = update.tuple
        coordinator = self._constant_coordinator[cfd.name]
        pattern = cfd.pattern
        constants = {
            a: pattern.entry(a) for a in cfd.lhs if pattern.entry(a) is not UNNAMED
        }
        # Each site holding LHS attributes checks its local projection against the
        # pattern; locally matching partial tuples are shipped to the coordinator
        # together with the RHS value if stored there (Fig. 5, lines 5-6).
        for frag in self._partitioner.fragments:
            if frag.site == coordinator:
                continue
            relevant = [a for a in frag.attributes if a in cfd.lhs]
            if not relevant:
                continue
            if all(t[a] == constants[a] for a in relevant if a in constants):
                payload = {a: t[a] for a in relevant}
                self._network.send(
                    frag.site,
                    coordinator,
                    MessageKind.PARTIAL_TUPLE,
                    {"tid": t.tid, **payload},
                    estimate_tuple_bytes(t, relevant),
                    units=1,
                    tag=cfd.name,
                )
        if not cfd.single_tuple_violation(t):
            return
        if update.is_insert():
            self._mark(delta, t.tid, cfd.name)
        else:
            self._unmark(delta, t.tid, cfd.name)

    def _idx_site(self, cfd: CFD) -> int:
        """The site hosting the CFD's IDX (for the timing breakdown)."""
        try:
            return self._plan.idx_site(cfd.name)
        except Exception:
            return self._cluster.site_ids()[0]

    # -- the batch algorithm (Fig. 5) -----------------------------------------------------------

    def apply(self, updates: UpdateBatch) -> ViolationDelta:
        """Process a batch of updates and return the net change ``delta-V``.

        The batch is first normalized (updates on the same tid that
        cancel each other are dropped).  For every surviving update the
        eqid shipments required by the general variable CFDs are charged
        to the cluster network, sharing HEVs across CFDs within the
        update as the plan prescribes.  The constant checks and eqid
        shipments run at the coordinator in update order; the per-CFD
        IDX maintenance then runs as one independent task per variable
        CFD on the cluster's scheduler (every CFD owns its index and its
        violation marks, so any executor backend yields the serial
        outcome).
        """
        delta = ViolationDelta()
        normalized = list(updates.normalized())
        if not normalized:
            return delta
        for update in normalized:
            t = update.tuple
            self._maintain_fragments(update)
            cache = ShipmentCache()
            for cfd in self._constant_cfds:
                self._process_constant(cfd, update, delta)
            for cfd in self._general_cfds:
                if cfd.lhs_matches(t):
                    self._plan.evaluate_keys(cfd.name, t, self._network, cache)

        variable_cfds = [(cfd, site) for cfd, site in self._local_cfds]
        variable_cfds += [(cfd, self._idx_site(cfd)) for cfd in self._general_cfds]
        tasks = [
            SiteTask(
                site,
                _variable_cfd_task,
                (self._indices[cfd.name], normalized),
                label=f"incVer:{cfd.name}",
            )
            for cfd, site in variable_cfds
        ]
        for (cfd, _site), result in zip(
            variable_cfds, self._cluster.scheduler.run(tasks)
        ):
            index, ops = result.value
            self._indices[cfd.name] = index
            for op, tid in ops:
                if op == "+":
                    self._mark(delta, tid, cfd.name)
                else:
                    self._unmark(delta, tid, cfd.name)
        return delta
