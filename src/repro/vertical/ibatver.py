"""``ibatVer``: the improved batch baseline of Exp-10.

The paper strengthens the batch approach "by using our incremental
insertion algorithms and indices ... starting with the empty database
and inserting and deleting tuples until it reaches D".  The improved
baseline therefore costs ``O(|D| + |delta-D|)`` per run — better than
``batVer`` but still proportional to the database size, which is why the
truly incremental ``incVer`` wins until the update batch approaches |D|
(the crossover of Fig. 11(a)).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.cfd import CFD
from repro.core.relation import Relation
from repro.core.updates import UpdateBatch
from repro.core.violations import ViolationSet
from repro.distributed.cluster import Cluster
from repro.distributed.network import Network
from repro.indexes.hev import HEVPlan
from repro.partition.vertical import VerticalPartitioner
from repro.vertical.incver import VerticalIncrementalDetector


class ImprovedVerticalBatchDetector:
    """Recompute ``V(Sigma, D ⊕ delta-D)`` by incremental insertion from scratch."""

    def __init__(
        self,
        partitioner: VerticalPartitioner,
        cfds: Iterable[CFD],
        plan: HEVPlan | None = None,
        network: Network | None = None,
        fusion: bool = True,
    ):
        self._partitioner = partitioner
        self._cfds = list(cfds)
        self._plan = plan
        self._fusion = fusion
        # A caller-owned network lets the adaptive planner charge the
        # rebuild to the session ledger it measures; standalone use
        # keeps a private ledger as before.
        self._network = network or Network()

    @property
    def network(self) -> Network:
        """The network used by the rebuild (for shipment reporting)."""
        return self._network

    def detect(self, base: Relation, updates: UpdateBatch | None = None) -> ViolationSet:
        """Build ``V(Sigma, D ⊕ delta-D)`` starting from an empty database.

        Every tuple of the *updated* database is fed through the
        incremental insertion machinery ("starting with the empty
        database and inserting tuples until it reaches D", Exp-10), so
        the cost is proportional to ``|D ⊕ delta-D|``: better than
        ``batVer`` but still tied to the database size, unlike the truly
        incremental detector whose cost only depends on ``|delta-D|``.
        """
        final = updates.apply_to(base) if updates is not None else base
        empty = Relation(self._partitioner.schema, storage=base.storage)
        cluster = Cluster.from_vertical(self._partitioner, empty, network=self._network)
        detector = VerticalIncrementalDetector(
            cluster,
            self._cfds,
            plan=self._plan,
            violations=ViolationSet(),
            fusion=self._fusion,
        )
        detector.apply(UpdateBatch.inserts(list(final)))
        return detector.violations
