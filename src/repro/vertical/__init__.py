"""Detection algorithms for vertically partitioned data (Sections 4 and 5).

* :mod:`repro.vertical.single` — the single-update routines ``incVIns``
  and ``incVDel`` (Fig. 4), expressed over the IDX group index.
* :mod:`repro.vertical.incver` — ``incVer`` (Fig. 5): batch updates and
  multiple CFDs, with eqid shipments charged through the HEV plan.
* :mod:`repro.vertical.batver` — the batch baseline ``batVer`` following
  Fan et al. (ICDE 2010): ship relevant attribute columns to a
  coordinator per CFD and detect there.
* :mod:`repro.vertical.ibatver` — the improved batch baseline ``ibatVer``
  of Exp-10, which reuses the incremental insertion machinery to build
  the violation set from scratch.
"""

from repro.vertical.single import incremental_insert, incremental_delete
from repro.vertical.incver import VerticalIncrementalDetector
from repro.vertical.batver import VerticalBatchDetector
from repro.vertical.ibatver import ImprovedVerticalBatchDetector

__all__ = [
    "incremental_insert",
    "incremental_delete",
    "VerticalIncrementalDetector",
    "VerticalBatchDetector",
    "ImprovedVerticalBatchDetector",
]
